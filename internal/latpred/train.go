package latpred

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
)

// TrainOptions scopes and regularizes training.
type TrainOptions struct {
	// Lambda is the ridge strength (relative to row count). The default
	// 1e-3 barely biases the fit but keeps collinear feature pairs (raw
	// vs device-normalized work terms) numerically tame.
	Lambda float64
	// MinRowsPerFamily drops families with fewer usable rows than this;
	// an under-determined fit would pass the residual gate on luck.
	// Default 3*NumFeatures.
	MinRowsPerFamily int
	// MaxResidualLog is copied onto the model as its confidence gate
	// (default 0.25: comfortably above the 0.13 tuner-noise floor,
	// well below a mis-modeled family).
	MaxResidualLog float64
	// Devices restricts training rows to these platform shorts ("NX",
	// "AGX"). Empty trains on everything — the transfer studies use the
	// filter to hold a whole device profile out.
	Devices []string
	// MinClockMHz/MaxClockMHz restrict training rows to a clock band
	// (0 = unbounded); the held-out-clock study trains below a ceiling
	// and predicts above it.
	MinClockMHz, MaxClockMHz float64
}

// DefaultTrainOptions returns the standard training configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Lambda: 1e-3, MinRowsPerFamily: 3 * NumFeatures, MaxResidualLog: 0.25}
}

// TrainStats reports what Train consumed.
type TrainStats struct {
	Rows        int // usable training rows
	Skipped     int // cache entries filtered out or unparseable
	RowsByFam   map[kernels.Family]int
	DroppedFams []kernels.Family // families below MinRowsPerFamily
}

// Train fits per-family regressors from a timing cache: every entry is
// parsed back into (device, variant, dims) with core.ParseTimingKey, the
// launch is re-planned to recover its features, and the cached observed
// seconds become the log-space target. Entries that fail to parse — a
// shared cache may carry foreign keys — are skipped, not fatal; training
// fails only when no family reaches MinRowsPerFamily.
func Train(cache *core.TimingCache, opts TrainOptions) (*Model, TrainStats, error) {
	if opts.Lambda <= 0 {
		opts.Lambda = 1e-3
	}
	if opts.MinRowsPerFamily <= 0 {
		opts.MinRowsPerFamily = 3 * NumFeatures
	}
	if opts.MaxResidualLog <= 0 {
		opts.MaxResidualLog = 0.25
	}
	stats := TrainStats{RowsByFam: map[kernels.Family]int{}}
	if cache == nil {
		return nil, stats, fmt.Errorf("latpred: train on nil timing cache")
	}

	rowsByFam := map[kernels.Family][][NumFeatures]float64{}
	ysByFam := map[kernels.Family][]float64{}
	for _, key := range cache.Keys() { // sorted: training is deterministic
		obs, ok := cache.Lookup(key)
		if !ok || !(obs > 0) {
			stats.Skipped++
			continue
		}
		devStr, v, d, _, err := core.ParseTimingKey(key)
		if err != nil {
			stats.Skipped++
			continue
		}
		dev, err := ParseDeviceKey(devStr)
		if err != nil || !admitDevice(dev, opts) {
			stats.Skipped++
			continue
		}
		ls := kernels.PlanConv(v, d)
		var f [NumFeatures]float64
		if !featuresInto(&f, dev, ls) {
			stats.Skipped++
			continue
		}
		fam := v.Family
		rowsByFam[fam] = append(rowsByFam[fam], f)
		ysByFam[fam] = append(ysByFam[fam], math.Log(obs))
		stats.Rows++
		stats.RowsByFam[fam]++
	}

	m := &Model{MaxResidualLog: opts.MaxResidualLog, families: map[kernels.Family]*FamilyModel{}}
	for fam, rows := range rowsByFam {
		if len(rows) < opts.MinRowsPerFamily {
			stats.DroppedFams = append(stats.DroppedFams, fam)
			continue
		}
		fm, err := fitRidge(rows, ysByFam[fam], opts.Lambda)
		if err != nil {
			// A degenerate family (e.g. every row identical) is dropped,
			// not fatal: PredictSec answers ok=false for it and the tuner
			// times those layers in full.
			stats.DroppedFams = append(stats.DroppedFams, fam)
			continue
		}
		m.families[fam] = fm
	}
	sortFams(stats.DroppedFams)
	if len(m.families) == 0 {
		return nil, stats, fmt.Errorf("latpred: no family reached %d training rows (usable rows %d, skipped %d)",
			opts.MinRowsPerFamily, stats.Rows, stats.Skipped)
	}
	return m, stats, nil
}

// ParseDeviceKey parses the tuner's device-key format "SHORT@<clock>MHz"
// (e.g. "NX@599MHz") back into a configured device. Like cache keys, the
// input is untrusted: malformed strings return an error.
func ParseDeviceKey(s string) (*gpusim.Device, error) {
	at := strings.LastIndex(s, "@")
	if at < 0 {
		return nil, fmt.Errorf("latpred: device key %q: missing '@'", s)
	}
	spec, err := gpusim.ByName(s[:at])
	if err != nil {
		return nil, fmt.Errorf("latpred: device key %q: %w", s, err)
	}
	clockStr, okSuffix := strings.CutSuffix(s[at+1:], "MHz")
	if !okSuffix {
		return nil, fmt.Errorf("latpred: device key %q: missing MHz suffix", s)
	}
	clock, err := strconv.ParseFloat(clockStr, 64)
	if err != nil || !(clock > 0) {
		return nil, fmt.Errorf("latpred: device key %q: bad clock", s)
	}
	return gpusim.NewDevice(spec, clock), nil
}

// DeviceKey renders a device in the tuner's cache-key format, so study
// code can build filters that match what builds recorded.
func DeviceKey(dev *gpusim.Device) string {
	return fmt.Sprintf("%s@%.0fMHz", dev.Spec.Short(), dev.ClockMHz)
}

func admitDevice(dev *gpusim.Device, opts TrainOptions) bool {
	if len(opts.Devices) > 0 {
		found := false
		for _, want := range opts.Devices {
			if dev.Spec.Short() == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if opts.MinClockMHz > 0 && dev.ClockMHz < opts.MinClockMHz {
		return false
	}
	if opts.MaxClockMHz > 0 && dev.ClockMHz > opts.MaxClockMHz {
		return false
	}
	return true
}

func sortFams(fams []kernels.Family) {
	for i := 1; i < len(fams); i++ {
		for j := i; j > 0 && fams[j] < fams[j-1]; j-- {
			fams[j], fams[j-1] = fams[j-1], fams[j]
		}
	}
}
