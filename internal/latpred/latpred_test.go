package latpred

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// seedCache builds every zoo model once on a device and returns the
// populated timing cache — the predictor's training corpus.
func seedCache(t *testing.T, spec gpusim.DeviceSpec) *core.TimingCache {
	t.Helper()
	cache := core.NewTimingCache()
	for _, name := range models.List() {
		cfg := core.DefaultConfig(spec, 1)
		cfg.TimingCache = cache
		if _, err := core.Build(models.MustBuild(name), cfg); err != nil {
			t.Fatal(err)
		}
	}
	return cache
}

func trainNX(t *testing.T) *Model {
	t.Helper()
	m, stats, err := Train(seedCache(t, gpusim.XavierNX()), DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows == 0 || stats.Skipped != 0 {
		t.Fatalf("training consumed %d rows, skipped %d (cache keys should all parse)",
			stats.Rows, stats.Skipped)
	}
	return m
}

func TestTrainFitsMajorFamilies(t *testing.T) {
	m := trainNX(t)
	for _, fam := range []kernels.Family{kernels.FamHMMAConv, kernels.FamWinograd, kernels.FamCUDAConv, kernels.FamGEMM} {
		fm, ok := m.Family(fam)
		if !ok {
			t.Fatalf("family %s not fitted", fam)
		}
		if fm.ResidualLog > m.MaxResidualLog {
			t.Fatalf("family %s residual %.3f above gate %.3f", fam, fm.ResidualLog, m.MaxResidualLog)
		}
		if fm.Rows < 3*NumFeatures {
			t.Fatalf("family %s fitted from only %d rows", fam, fm.Rows)
		}
	}
}

// TestPredictAccuracyOnTrainingDevice: same-device predictions should
// land within the tuner's own noise envelope — the cache entries carry
// ~13% multiplicative noise, so median error well under 25% means the
// model learned the latency surface rather than the noise.
func TestPredictAccuracyOnTrainingDevice(t *testing.T) {
	m := trainNX(t)
	dev := gpusim.NewDevice(gpusim.XavierNX(), 0)
	var errs []float64
	for _, d := range testDims() {
		for _, v := range kernels.ConvCandidates(d, tensor.FP16) {
			ls := kernels.PlanConv(v, d)
			got, ok := m.PredictSec(dev, ls)
			if !ok {
				continue
			}
			truth := ls.TimeSec(dev)
			errs = append(errs, math.Abs(got-truth)/truth)
		}
	}
	if len(errs) < 20 {
		t.Fatalf("only %d predictions made", len(errs))
	}
	if med := median(errs); med > 0.25 {
		t.Fatalf("median same-device error %.1f%% above 25%%", 100*med)
	}
}

func testDims() []kernels.ConvDims {
	return []kernels.ConvDims{
		{Batch: 1, InC: 64, H: 56, W: 56, OutC: 64, OutH: 56, OutW: 56, Kernel: 3, Stride: 1, Groups: 1},
		{Batch: 1, InC: 128, H: 28, W: 28, OutC: 256, OutH: 14, OutW: 14, Kernel: 3, Stride: 2, Groups: 1},
		{Batch: 4, InC: 256, H: 14, W: 14, OutC: 256, OutH: 14, OutW: 14, Kernel: 3, Stride: 1, Groups: 1},
		{Batch: 1, InC: 32, H: 112, W: 112, OutC: 64, OutH: 112, OutW: 112, Kernel: 1, Stride: 1, Groups: 1},
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// TestPrunedZooChoicesUnchanged is the acceptance pin for the learned
// predictor at the default k: across the whole model zoo and several
// build ids, pruned cold builds pick byte-identical tactics while
// cutting the modeled tactic-timing cost by at least half.
func TestPrunedZooChoicesUnchanged(t *testing.T) {
	m := trainNX(t)
	var totalUn, totalPr float64
	var totalPrunes, totalFallbacks int
	for build := 2; build <= 4; build++ {
		for _, name := range models.List() {
			g := models.MustBuild(name)
			un, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), build))
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(gpusim.XavierNX(), build)
			cfg.Predictor = m
			pr, err := core.Build(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(un.Choices, pr.Choices) {
				for l, v := range un.Choices {
					if pr.Choices[l] != v {
						t.Errorf("%s build %d layer %s: %v -> %v", name, build, l, v, pr.Choices[l])
					}
				}
				t.Fatalf("%s build %d: pruned build changed tactic choices", name, build)
			}
			totalUn += un.Report.TuneCostSec
			totalPr += pr.Report.TuneCostSec
			totalPrunes += pr.Report.PredictedPrunes
			totalFallbacks += pr.Report.PredictorFallbacks
		}
	}
	cut := 1 - totalPr/totalUn
	if cut < 0.5 {
		t.Fatalf("zoo tuning-cost cut %.1f%% below 50%%", 100*cut)
	}
	if totalPrunes == 0 {
		t.Fatal("learned predictor pruned nothing")
	}
	t.Logf("zoo cut %.1f%%, %d prunes, %d fallbacks", 100*cut, totalPrunes, totalFallbacks)
}

// TestConfidenceGateFallsBack: inflating a family's residual above the
// gate must turn its predictions off, and a build using such a model
// must still pick identical tactics (via full-menu fallback).
func TestConfidenceGateFallsBack(t *testing.T) {
	m := trainNX(t)
	fams := map[kernels.Family]*FamilyModel{}
	for _, f := range m.Families() {
		fm := *mustFamily(t, m, f)
		fm.ResidualLog = m.MaxResidualLog + 1
		fams[f] = &fm
	}
	gated := NewModel(m.MaxResidualLog, fams)

	dev := gpusim.NewDevice(gpusim.XavierNX(), 0)
	d := testDims()[0]
	ls := kernels.PlanConv(kernels.ConvCandidates(d, tensor.FP16)[0], d)
	if _, ok := gated.PredictSec(dev, ls); ok {
		t.Fatal("gated family still predicts")
	}

	g := models.MustBuild("alexnet")
	un, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(gpusim.XavierNX(), 2)
	cfg.Predictor = gated
	fb, err := core.Build(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(un.Choices, fb.Choices) {
		t.Fatal("gated build changed tactic choices")
	}
	if fb.Report.PredictorFallbacks == 0 || fb.Report.PredictedPrunes != 0 {
		t.Fatalf("gated build: %d fallbacks, %d prunes", fb.Report.PredictorFallbacks, fb.Report.PredictedPrunes)
	}
	if fb.Report.TuneCostSec != un.Report.TuneCostSec {
		t.Fatal("gated build's tuning cost differs from unpruned")
	}
}

func mustFamily(t *testing.T, m *Model, f kernels.Family) *FamilyModel {
	t.Helper()
	fm, ok := m.Family(f)
	if !ok {
		t.Fatalf("family %s missing", f)
	}
	return fm
}

func TestTrainFilters(t *testing.T) {
	cache := seedCache(t, gpusim.XavierNX())
	opts := DefaultTrainOptions()
	opts.Devices = []string{"AGX"}
	if _, stats, err := Train(cache, opts); err == nil {
		t.Fatalf("training on absent device succeeded (%d rows)", stats.Rows)
	} else if stats.Skipped == 0 {
		t.Fatal("device filter skipped nothing")
	}
	if _, _, err := Train(nil, DefaultTrainOptions()); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, _, err := Train(core.NewTimingCache(), DefaultTrainOptions()); err == nil {
		t.Fatal("empty cache accepted")
	}
	// Foreign keys are skipped, not fatal.
	mixed := seedCache(t, gpusim.XavierNX())
	mixed.Insert("not-a-timing-key", 1e-4)
	if _, stats, err := Train(mixed, DefaultTrainOptions()); err != nil {
		t.Fatal(err)
	} else if stats.Skipped != 1 {
		t.Fatalf("foreign key skipped %d times", stats.Skipped)
	}
}

func TestDeviceKeyRoundTrip(t *testing.T) {
	for _, spec := range []gpusim.DeviceSpec{gpusim.XavierNX(), gpusim.XavierAGX()} {
		for _, clock := range []float64{0, 599, 1109} {
			dev := gpusim.NewDevice(spec, clock)
			got, err := ParseDeviceKey(DeviceKey(dev))
			if err != nil {
				t.Fatal(err)
			}
			if got.Spec.Short() != spec.Short() || got.ClockMHz != dev.ClockMHz {
				t.Fatalf("round trip %q -> %s@%.0f", DeviceKey(dev), got.Spec.Short(), got.ClockMHz)
			}
		}
	}
	for _, bad := range []string{"", "NX", "NX@", "NX@MHz", "NX@-5MHz", "NX@900", "Orin@900MHz", "@900MHz"} {
		if _, err := ParseDeviceKey(bad); err == nil {
			t.Errorf("malformed device key accepted: %q", bad)
		}
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	m := trainNX(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxResidualLog != m.MaxResidualLog || !reflect.DeepEqual(got.Families(), m.Families()) {
		t.Fatal("round trip changed model shape")
	}
	for _, f := range m.Families() {
		if !reflect.DeepEqual(mustFamily(t, got, f), mustFamily(t, m, f)) {
			t.Fatalf("family %s coefficients changed", f)
		}
	}
	// Canonical bytes, and predictions survive the trip bit-exactly.
	var buf2 bytes.Buffer
	if err := got.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("model serialization is not canonical")
	}
	dev := gpusim.NewDevice(gpusim.XavierNX(), 0)
	d := testDims()[0]
	for _, v := range kernels.ConvCandidates(d, tensor.FP16) {
		ls := kernels.PlanConv(v, d)
		a, aok := m.PredictSec(dev, ls)
		b, bok := got.PredictSec(dev, ls)
		if a != b || aok != bok {
			t.Fatalf("prediction changed across serialization: %v,%v vs %v,%v", a, aok, b, bok)
		}
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	m := trainNX(t)
	path := t.TempDir() + "/model.bin"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(t.TempDir() + "/absent.bin"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestLoadHostileInput: model files are untrusted; malformed bytes must
// error without panics or length-driven allocations.
func TestLoadHostileInput(t *testing.T) {
	valid := func() []byte {
		fams := map[kernels.Family]*FamilyModel{}
		fm := &FamilyModel{ResidualLog: 0.1, Rows: 50}
		for i := range fm.Std {
			fm.Std[i] = 1
		}
		fams[kernels.FamGEMM] = fm
		var buf bytes.Buffer
		if err := NewModel(0.25, fams).Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	u32 := func(v uint32) []byte {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, v)
		return b
	}
	f64 := func(v float64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		return b
	}
	mutate := func(off int, repl []byte) []byte {
		b := append([]byte(nil), valid...)
		copy(b[off:], repl)
		return b
	}
	const (
		offGate  = 8           // after magic
		offCount = offGate + 8 // family count
		offFam   = offCount + 4
		offRows  = offFam + 1
		offRes   = offRows + 4
		offWidth = offRes + 8
		offVecs  = offWidth + 4
	)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", mutate(0, []byte("EDGETC01"))},
		{"nan gate", mutate(offGate, f64(math.NaN()))},
		{"negative gate", mutate(offGate, f64(-1))},
		{"huge family count", mutate(offCount, u32(1 << 30))},
		{"count without families", mutate(offCount, u32(7))},
		{"unknown family id", mutate(offFam, []byte{0xEE})},
		{"nan residual", mutate(offRes, f64(math.NaN()))},
		{"negative residual", mutate(offRes, f64(-0.5))},
		{"foreign feature width", mutate(offWidth, u32(NumFeatures + 3))},
		{"nan weight", mutate(offVecs, f64(math.NaN()))},
		{"inf mean", mutate(offVecs+8*NumFeatures, f64(math.Inf(1)))},
		{"zero std", mutate(offVecs+16*NumFeatures, f64(0))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(tc.data)); err == nil {
				t.Fatalf("hostile input %q accepted", tc.name)
			}
		})
	}
	for n := 0; n < len(valid); n++ {
		if _, err := Load(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(valid))
		}
	}
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}

	// A duplicated family entry must be rejected too.
	dup := append([]byte(nil), valid...)
	dup = append(dup, valid[offFam:]...)
	copy(dup[offCount:], u32(2))
	if _, err := Load(bytes.NewReader(dup)); err == nil {
		t.Fatal("duplicate family accepted")
	}
}

// TestTransferToUnseenDevice: a model trained purely on NX entries must
// still predict AGX launches with usable accuracy — the device terms are
// features, not per-device fits. The full quantitative comparison
// against the analytic BSP model is the §VI-B extension study.
func TestTransferToUnseenDevice(t *testing.T) {
	m := trainNX(t)
	dev := gpusim.NewDevice(gpusim.XavierAGX(), 0)
	var errs []float64
	for _, d := range testDims() {
		for _, v := range kernels.ConvCandidates(d, tensor.FP16) {
			ls := kernels.PlanConv(v, d)
			got, ok := m.PredictSec(dev, ls)
			if !ok {
				continue
			}
			truth := ls.TimeSec(dev)
			errs = append(errs, math.Abs(got-truth)/truth)
		}
	}
	if len(errs) < 20 {
		t.Fatalf("only %d transfer predictions made", len(errs))
	}
	if med := median(errs); med > 0.40 {
		t.Fatalf("median unseen-device error %.1f%% above 40%%", 100*med)
	}
}
