package latpred

import (
	"fmt"
	"math"
)

// fitRidge solves the standardized ridge regression min ||Xw - y||^2 +
// lambda*n*||w||^2 over the feature rows (targets are log-seconds) and
// returns the fitted family model. Features are standardized per column
// before solving — except the intercept, which keeps mean 0 / std 1 so
// its weight carries the bias — and the normal equations are solved with
// Gaussian elimination under partial pivoting: the system is only
// NumFeatures wide, so a dense deterministic solve is both exact enough
// and allocation-bounded.
func fitRidge(rows [][NumFeatures]float64, ys []float64, lambda float64) (*FamilyModel, error) {
	n := len(rows)
	if n == 0 || n != len(ys) {
		return nil, fmt.Errorf("latpred: ridge fit over %d rows / %d targets", n, len(ys))
	}
	fm := &FamilyModel{Rows: n}

	// Column statistics; constant columns get std 1 so they standardize
	// to zero and their weight is free to stay zero.
	for j := 0; j < NumFeatures; j++ {
		fm.Std[j] = 1
	}
	for j := 1; j < NumFeatures; j++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += rows[i][j]
		}
		mean := sum / float64(n)
		var sq float64
		for i := 0; i < n; i++ {
			d := rows[i][j] - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(n))
		fm.Mean[j] = mean
		if std > 1e-12 {
			fm.Std[j] = std
		}
	}

	// Normal equations A w = b over standardized features.
	var a [NumFeatures][NumFeatures]float64
	var b [NumFeatures]float64
	var z [NumFeatures]float64
	for i := 0; i < n; i++ {
		for j := 0; j < NumFeatures; j++ {
			z[j] = (rows[i][j] - fm.Mean[j]) / fm.Std[j]
		}
		for j := 0; j < NumFeatures; j++ {
			for k := j; k < NumFeatures; k++ {
				a[j][k] += z[j] * z[k]
			}
			b[j] += z[j] * ys[i]
		}
	}
	for j := 0; j < NumFeatures; j++ {
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
	}
	// Penalize every weight but the intercept's.
	ridge := lambda * float64(n)
	for j := 1; j < NumFeatures; j++ {
		a[j][j] += ridge
	}

	w, err := solve(&a, &b)
	if err != nil {
		return nil, err
	}
	fm.Weights = w

	// Train-set residual in log space: the confidence figure the prune
	// safety valve gates on.
	var sq float64
	for i := 0; i < n; i++ {
		pred := 0.0
		for j := 0; j < NumFeatures; j++ {
			pred += w[j] * (rows[i][j] - fm.Mean[j]) / fm.Std[j]
		}
		d := pred - ys[i]
		sq += d * d
	}
	fm.ResidualLog = math.Sqrt(sq / float64(n))
	if math.IsNaN(fm.ResidualLog) || math.IsInf(fm.ResidualLog, 0) {
		return nil, fmt.Errorf("latpred: ridge fit diverged (residual %v)", fm.ResidualLog)
	}
	return fm, nil
}

// solve runs Gaussian elimination with partial pivoting on A w = b.
func solve(a *[NumFeatures][NumFeatures]float64, b *[NumFeatures]float64) ([NumFeatures]float64, error) {
	var w [NumFeatures]float64
	m := *a
	v := *b
	for col := 0; col < NumFeatures; col++ {
		pivot := col
		for r := col + 1; r < NumFeatures; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return w, fmt.Errorf("latpred: singular normal equations at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < NumFeatures; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k < NumFeatures; k++ {
				m[r][k] -= f * m[col][k]
			}
			v[r] -= f * v[col]
		}
	}
	for col := NumFeatures - 1; col >= 0; col-- {
		sum := v[col]
		for k := col + 1; k < NumFeatures; k++ {
			sum -= m[col][k] * w[k]
		}
		w[col] = sum / m[col][col]
	}
	return w, nil
}
