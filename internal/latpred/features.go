package latpred

import (
	"math"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/kernels"
	"edgeinfer/internal/tensor"
)

// The engineered feature vector, in log space where the latency surface
// is near-linear. Device terms (peak rate at the configured clock, DRAM
// bandwidth, wave and L2 geometry) are folded into the features rather
// than learned per device, which is what lets a model trained on one
// device profile transfer to an unseen one. absRoofline is the hinge
// |logCompute - logStream|: together with the two ratio terms it lets a
// linear model represent log(max(compute, stream)) exactly —
// max(a,b) = (a+b)/2 + |a-b|/2 — so the regressor can learn a roofline
// without being handed the analytic answer (per-family efficiencies and
// tile curves remain for it to infer from data).
const (
	featIntercept  = iota // 1
	featLogFLOPs          // log FLOPs of the launch
	featLogBytes          // log DRAM traffic
	featLogCompute        // log(FLOPs / peak rate for the family's core type)
	featLogStream         // log(MemBytes / DRAM bandwidth)
	featAbsRoofline       // |logCompute - logStream|
	featLogWaveEff        // log wave efficiency of the grid on this device
	featLogL2Press        // log(working set / per-SM L2 share), floored at 0
	featLogTileUtil       // log tile-slot utilization
	featLogTileArea       // log(TileM * TileN)
	featLogSplitK         // log split-K factor
	featFusedAct          // epilogue-fused activation flag
	featInt8              // IMMA-rate flag (INT8 on tensor cores)

	// NumFeatures is the feature-vector width; serialized models record
	// it and refuse to load under a different layout.
	NumFeatures
)

// featuresInto fills f for a launch priced on dev, returning false when
// the launch is degenerate (non-positive work, traffic, or peaks) and no
// meaningful prediction exists. Writing into a caller-owned array keeps
// the predict path allocation-free (//rt:hotpath on Model.PredictSec).
func featuresInto(f *[NumFeatures]float64, dev *gpusim.Device, ls kernels.LaunchSpec) bool {
	peak := dev.PeakFLOPS(ls.V.Family.TensorCore())
	bw := dev.DRAMBandwidth()
	waveEff := dev.WaveEfficiency(ls.Blocks)
	util := ls.TileUtilization()
	if ls.FLOPs <= 0 || ls.MemBytes <= 0 || peak <= 0 || bw <= 0 || waveEff <= 0 || util <= 0 {
		return false
	}
	logFLOPs := math.Log(float64(ls.FLOPs))
	logBytes := math.Log(float64(ls.MemBytes))
	logCompute := logFLOPs - math.Log(peak)
	logStream := logBytes - math.Log(bw)

	f[featIntercept] = 1
	f[featLogFLOPs] = logFLOPs
	f[featLogBytes] = logBytes
	f[featLogCompute] = logCompute
	f[featLogStream] = logStream
	f[featAbsRoofline] = math.Abs(logCompute - logStream)
	f[featLogWaveEff] = math.Log(waveEff)
	f[featLogL2Press] = logL2Pressure(dev, ls.WorkingSet)
	f[featLogTileUtil] = math.Log(util)
	f[featLogTileArea] = logTileArea(ls.V)
	f[featLogSplitK] = logSplitK(ls.V)
	f[featFusedAct] = boolFeat(ls.V.FusedAct)
	f[featInt8] = boolFeat(ls.V.Precision == tensor.INT8 && ls.V.Family.TensorCore())
	return true
}

// logL2Pressure is the log overcommit of the launch's per-SM working set
// against the device's L2 share, floored at zero: working sets inside
// the share exert no pressure, and the floor keeps the feature from
// rewarding tiny kernels.
func logL2Pressure(dev *gpusim.Device, workingSet int64) float64 {
	share := dev.L2SharePerSMBytes()
	if workingSet <= 0 || share <= 0 || workingSet <= share {
		return 0
	}
	return math.Log(float64(workingSet) / float64(share))
}

func logTileArea(v kernels.Variant) float64 {
	area := v.TileM * v.TileN
	if area < 1 {
		area = 1
	}
	return math.Log(float64(area))
}

func logSplitK(v kernels.Variant) float64 {
	if v.SplitK <= 1 {
		return 0
	}
	return math.Log(float64(v.SplitK))
}

func boolFeat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
