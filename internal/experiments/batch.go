package experiments

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/models"
)

// Extension experiment: batched engines. The paper times batch-1 engines
// (the latency-critical edge regime); this sweep shows the classic
// throughput/latency trade as batch grows — per-launch overheads
// amortize while per-frame latency climbs.

// BatchRow is one (model, batch) point.
type BatchRow struct {
	Model       string
	Batch       int
	LatencyMS   float64 // per batch
	PerFrameMS  float64
	Throughput  float64 // frames/s
	SpeedupVsB1 float64
}

// BatchSweep times batched engines of a model on NX at the latency clock.
func (l *Lab) BatchSweep(model string, batches []int) ([]BatchRow, error) {
	dev := latencyDevice("NX")
	var out []BatchRow
	var base float64
	for _, b := range batches {
		g, err := models.BuildBatched(model, b)
		if err != nil {
			return nil, err
		}
		e, err := core.Build(g, core.DefaultConfig(platformSpec("NX"), 1))
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s batch %d: %w", model, b, err)
		}
		lat := e.Run(core.RunConfig{Device: dev}).LatencySec
		perFrame := lat / float64(b)
		if b == batches[0] {
			base = perFrame
		}
		out = append(out, BatchRow{
			Model: model, Batch: b,
			LatencyMS:   lat * 1e3,
			PerFrameMS:  perFrame * 1e3,
			Throughput:  1 / perFrame,
			SpeedupVsB1: base / perFrame,
		})
	}
	return out, nil
}

// RenderBatchSweep formats the batch extension table.
func (l *Lab) RenderBatchSweep() (string, error) {
	t := &table{
		title:  "Extension: batch sweep (resnet18 and googlenet on NX)",
		header: []string{"NN Model", "Batch", "Latency (ms)", "ms/frame", "FPS", "Throughput vs batch 1"},
	}
	for _, model := range []string{"resnet18", "googlenet"} {
		rows, err := l.BatchSweep(model, []int{1, 2, 4, 8})
		if err != nil {
			return "", err
		}
		for _, r := range rows {
			t.add(r.Model, fmt.Sprintf("%d", r.Batch), f2(r.LatencyMS), f2(r.PerFrameMS),
				f1(r.Throughput), f2(r.SpeedupVsB1)+"x")
		}
	}
	return t.String(), nil
}
