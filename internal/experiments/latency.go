package experiments

import (
	"fmt"
	"sort"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/profiler"
)

// runLatencies executes an engine Opts.Runs times and summarizes.
func (l *Lab) runLatencies(e *core.Engine, platform string, memcpy, profile bool) metrics.LatencyStats {
	dev := latencyDevice(platform)
	secs := make([]float64, l.Opts.Runs)
	for i := range secs {
		secs[i] = e.Run(core.RunConfig{Device: dev, IncludeMemcpy: memcpy, Profile: profile, RunIndex: i}).LatencySec
	}
	return metrics.Latencies(secs)
}

// Table8Row is one model's latency matrix with detected anomalies.
type Table8Row struct {
	Model  string
	Matrix metrics.LatencyMatrix
}

// Table8 reproduces Table VIII: average inference latency (with nvprof
// attached, engine memcpy included) for the four compile/run platform
// combinations, over all 13 models.
func (l *Lab) Table8() []Table8Row {
	var out []Table8Row
	for _, m := range modelList() {
		eNX := l.engine(m, "NX", 1)
		eAGX := l.engine(m, "AGX", 1)
		out = append(out, Table8Row{
			Model: m,
			Matrix: metrics.LatencyMatrix{
				CNXRNX:   l.runLatencies(eNX, "NX", true, true),
				CNXRAGX:  l.runLatencies(eNX, "AGX", true, true),
				CAGXRAGX: l.runLatencies(eAGX, "AGX", true, true),
				CAGXRNX:  l.runLatencies(eAGX, "NX", true, true),
			},
		})
	}
	return out
}

// RenderTable8 formats Table VIII.
func (l *Lab) RenderTable8() string {
	t := &table{
		title:  "Table VIII: average inference latency (ms) with nvprof, memcpy included",
		header: []string{"NN Model", "cNX_rNX", "cNX_rAGX", "cAGX_rAGX", "cAGX_rNX", "Detected Anomalies"},
	}
	for _, r := range l.Table8() {
		t.add(r.Model, r.Matrix.CNXRNX.String(), r.Matrix.CNXRAGX.String(),
			r.Matrix.CAGXRAGX.String(), r.Matrix.CAGXRNX.String(), r.Matrix.AnomalyString())
	}
	return t.String()
}

// Table9 reproduces Table IX: the same latency matrix for two
// representative models with the profiler detached — the anomalies must
// not be a profiling artifact.
func (l *Lab) Table9() []Table8Row {
	var out []Table8Row
	for _, m := range []string{"inceptionv4", "pednet"} {
		eNX := l.engine(m, "NX", 1)
		eAGX := l.engine(m, "AGX", 1)
		out = append(out, Table8Row{
			Model: m,
			Matrix: metrics.LatencyMatrix{
				CNXRNX:   l.runLatencies(eNX, "NX", true, false),
				CNXRAGX:  l.runLatencies(eNX, "AGX", true, false),
				CAGXRAGX: l.runLatencies(eAGX, "AGX", true, false),
				CAGXRNX:  l.runLatencies(eAGX, "NX", true, false),
			},
		})
	}
	return out
}

// RenderTable9 formats Table IX.
func (l *Lab) RenderTable9() string {
	t := &table{
		title:  "Table IX: average inference latency (ms) WITHOUT nvprof",
		header: []string{"NN Model", "cNX_rNX", "cNX_rAGX", "cAGX_rAGX", "cAGX_rNX", "Detected Anomalies"},
	}
	for _, r := range l.Table9() {
		t.add(r.Model, r.Matrix.CNXRNX.String(), r.Matrix.CNXRAGX.String(),
			r.Matrix.CAGXRAGX.String(), r.Matrix.CAGXRNX.String(), r.Matrix.AnomalyString())
	}
	return t.String()
}

// Table10Row is one model of Table X: the NX engine run on both
// platforms with memcpy included and excluded.
type Table10Row struct {
	Model            string
	NXIncl, NXExcl   metrics.LatencyStats
	AGXIncl, AGXExcl metrics.LatencyStats
	MemcpyAnomalous  bool // AGX memcpy share exceeds NX's
	KernelAnomalous  bool // AGX slower even without memcpy
}

// table10Models are the five models the paper dissects in Table X.
var table10Models = []string{"resnet18", "inceptionv4", "pednet", "facenet", "mobilenetv1"}

// Table10 reproduces Table X.
func (l *Lab) Table10() []Table10Row {
	var out []Table10Row
	for _, m := range table10Models {
		e := l.engine(m, "NX", 1)
		r := Table10Row{
			Model:   m,
			NXIncl:  l.runLatencies(e, "NX", true, true),
			NXExcl:  l.runLatencies(e, "NX", false, true),
			AGXIncl: l.runLatencies(e, "AGX", true, true),
			AGXExcl: l.runLatencies(e, "AGX", false, true),
		}
		r.MemcpyAnomalous = (r.AGXIncl.MeanMS - r.AGXExcl.MeanMS) > (r.NXIncl.MeanMS - r.NXExcl.MeanMS)
		r.KernelAnomalous = r.AGXExcl.MeanMS > r.NXExcl.MeanMS
		out = append(out, r)
	}
	return out
}

// RenderTable10 formats Table X.
func (l *Lab) RenderTable10() string {
	t := &table{
		title:  "Table X: NX-built engine latency (ms) with and without CUDA memcpy",
		header: []string{"NN Model", "rNX incl", "rNX excl", "rAGX incl", "rAGX excl", "memcpy slower on AGX", "kernels slower on AGX"},
	}
	for _, r := range l.Table10() {
		t.add(r.Model, r.NXIncl.String(), r.NXExcl.String(), r.AGXIncl.String(), r.AGXExcl.String(),
			fmt.Sprintf("%v", r.MemcpyAnomalous), fmt.Sprintf("%v", r.KernelAnomalous))
	}
	return t.String()
}

// Table11Row is one kernel of Table XI: per-kernel average runtime of an
// NX-built engine on both platforms.
type Table11Row struct {
	Model, Symbol string
	NXms, AGXms   float64
	SlowerOnAGX   bool
}

// Table11 reproduces Table XI: the kernels of pednet, facenet and
// mobilenetv1 that run slower on AGX than NX. The top kernels by NX time
// are reported per model.
func (l *Lab) Table11() []Table11Row {
	var out []Table11Row
	for _, m := range []string{"pednet", "facenet", "mobilenetv1"} {
		e := l.engine(m, "NX", 1)
		nx := l.profileSummary(e, "NX")
		agx := l.profileSummary(e, "AGX")
		type pair struct {
			sym     string
			nx, agx float64
		}
		var pairs []pair
		for sym, t := range nx {
			pairs = append(pairs, pair{sym, t, agx[sym]})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].nx > pairs[j].nx })
		shown := 0
		for _, p := range pairs {
			if shown >= 4 {
				break
			}
			out = append(out, Table11Row{
				Model: m, Symbol: p.sym,
				NXms: p.nx * 1e3, AGXms: p.agx * 1e3,
				SlowerOnAGX: p.agx > p.nx,
			})
			shown++
		}
	}
	return out
}

// profileSummary returns total per-symbol kernel time of one run.
func (l *Lab) profileSummary(e *core.Engine, platform string) map[string]float64 {
	dev := latencyDevice(platform)
	res := e.Run(core.RunConfig{Device: dev, Profile: true})
	out := map[string]float64{}
	for _, k := range res.Kernels {
		out[k.Symbol] += k.DurSec
	}
	return out
}

// RenderTable11 formats Table XI.
func (l *Lab) RenderTable11() string {
	t := &table{
		title:  "Table XI: per-kernel total runtime (ms) of NX-built engines on NX vs AGX",
		header: []string{"Model", "Kernel", "NX (ms)", "AGX (ms)", "slower on AGX"},
	}
	for _, r := range l.Table11() {
		t.add(r.Model, r.Symbol, fmt.Sprintf("%.3f", r.NXms), fmt.Sprintf("%.3f", r.AGXms),
			fmt.Sprintf("%v", r.SlowerOnAGX))
	}
	return t.String()
}

// Table12Row is one model's latencies across three AGX-built engines.
type Table12Row struct {
	Model   string
	Engines [3]metrics.LatencyStats
	Varies  bool
}

// Table12 reproduces Table XII: run times of three independently built
// engines of each model on AGX.
func (l *Lab) Table12() []Table12Row {
	var out []Table12Row
	for _, m := range modelList() {
		var r Table12Row
		r.Model = m
		for i := 0; i < 3; i++ {
			e := l.engine(m, "AGX", i+1)
			r.Engines[i] = l.runLatencies(e, "AGX", true, true)
		}
		spread := r.Engines[0].MeanMS
		for _, s := range r.Engines[1:] {
			if s.MeanMS < spread {
				spread = s.MeanMS
			}
		}
		maxMean := r.Engines[0].MeanMS
		for _, s := range r.Engines[1:] {
			if s.MeanMS > maxMean {
				maxMean = s.MeanMS
			}
		}
		r.Varies = (maxMean-spread)/maxMean > 0.02
		out = append(out, r)
	}
	return out
}

// RenderTable12 formats Table XII.
func (l *Lab) RenderTable12() string {
	t := &table{
		title:  "Table XII: latency (ms) of three independently built AGX engines",
		header: []string{"NN Model", "Engine1", "Engine2", "Engine3", "varies"},
	}
	for _, r := range l.Table12() {
		t.add(r.Model, r.Engines[0].String(), r.Engines[1].String(), r.Engines[2].String(),
			fmt.Sprintf("%v", r.Varies))
	}
	return t.String()
}

// Table13Result captures Table XIII: invocation counts and per-call times
// of one kernel symbol across three engines of inception-v4 on AGX.
type Table13Result struct {
	Symbol    string
	Calls     [3]int
	PerCallUS [3][]float64
}

// Table13 reproduces Table XIII. The symbol with the largest
// count variance across engines is selected (the paper picks a
// representative h884cudnn kernel).
func (l *Lab) Table13() Table13Result {
	var engines [3]*core.Engine
	var summaries [3]profiler.Summary
	for i := 0; i < 3; i++ {
		engines[i] = l.engine("inceptionv4", "AGX", i+1)
		dev := latencyDevice("AGX")
		summaries[i] = profiler.Summarize(engines[i].Run(core.RunConfig{Device: dev, Profile: true}))
	}
	counts := func(s profiler.Summary) map[string]profiler.KernelStat {
		m := map[string]profiler.KernelStat{}
		for _, st := range s.Stats {
			m[st.Symbol] = st
		}
		return m
	}
	c0, c1, c2 := counts(summaries[0]), counts(summaries[1]), counts(summaries[2])
	best, bestSpread := "", -1
	for sym, st := range c0 {
		if !strings.Contains(sym, "h884") {
			continue
		}
		a, b, c := st.Calls, c1[sym].Calls, c2[sym].Calls
		spread := maxI(a, b, c) - minI(a, b, c)
		if spread > bestSpread {
			best, bestSpread = sym, spread
		}
	}
	res := Table13Result{Symbol: best}
	for i, cm := range []map[string]profiler.KernelStat{c0, c1, c2} {
		st := cm[best]
		res.Calls[i] = st.Calls
		for _, d := range st.PerCallSecs {
			res.PerCallUS[i] = append(res.PerCallUS[i], d*1e6)
		}
	}
	return res
}

// RenderTable13 formats Table XIII.
func (l *Lab) RenderTable13() string {
	r := l.Table13()
	var b strings.Builder
	fmt.Fprintf(&b, "Table XIII: invocations of %s across three AGX engines of inception-v4\n", r.Symbol)
	fmt.Fprintf(&b, "%10s %10s %10s\n", "Engine1", "Engine2", "Engine3")
	maxLen := 0
	for _, p := range r.PerCallUS {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	cell := func(i, j int) string {
		if j < len(r.PerCallUS[i]) {
			return fmt.Sprintf("%.2fus", r.PerCallUS[i][j])
		}
		return ""
	}
	for j := 0; j < maxLen; j++ {
		fmt.Fprintf(&b, "%10s %10s %10s\n", cell(0, j), cell(1, j), cell(2, j))
	}
	fmt.Fprintf(&b, "%8d calls %5d calls %5d calls\n", r.Calls[0], r.Calls[1], r.Calls[2])
	return b.String()
}

func maxI(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minI(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
