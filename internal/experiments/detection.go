package experiments

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/detect"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
)

// Extension experiment: detection quality and consistency. The paper
// defines IoU-based precision/recall at 0.75 as its detection metric
// (§II-E) and warns that "obstacles may or may not be detected" across
// engine rebuilds (Table XVI) but publishes no detection-accuracy table;
// this experiment supplies both, end to end through built engines.

// DetectionResult summarizes the study.
type DetectionResult struct {
	Scenes           int
	PrecisionAt50    float64
	RecallAt50       float64
	PrecisionAt75    float64
	RecallAt75       float64
	ClassAccuracyPct float64
	// ScenesDiffering counts dusk scenes where two engines built from
	// the same detector produce different detection sets.
	ScenesDiffering int
	DuskScenes      int
	EnginesCompared int
	// CoverageCellsDiffering counts coverage cells where the two engines
	// compute numerically different values (the raw non-determinism the
	// box decoder may or may not absorb).
	CoverageCellsDiffering int
	CoverageCells          int
}

// DetectionStudy runs the detection proxy over synthetic traffic scenes
// through two independently built engines.
func (l *Lab) DetectionStudy(scenes int) DetectionResult {
	cfg := dataset.DefaultScenes()
	g, err := buildDetector(cfg.HW)
	if err != nil {
		panic(err)
	}
	mk := func(platform string, build int) *core.Engine {
		bc := core.DefaultConfig(platformSpec(platform), build)
		bc.PruneFrac = 0 // uniform matched filter: pruning would gut it
		e, err := core.Build(g, bc)
		if err != nil {
			panic(err)
		}
		return e
	}
	// Find two engines whose tactic selections differ (the tuner's
	// non-determinism guarantees such pairs exist among a handful of
	// builds; which builds differ varies with the model).
	e1 := mk("NX", 1)
	e2 := mk("AGX", 1)
	// The head convolution's reduction (72 channels) is deep enough for
	// tile choices to change accumulation order; scan builds until the
	// two engines disagree in a numerics-relevant way (reduction tiling,
	// split-K or family — TileM/TileN only move work around).
	numericsDiffer := func() bool {
		a, b := e1.Choices["coverage_conv"], e2.Choices["coverage_conv"]
		return a.TileK != b.TileK || a.SplitK != b.SplitK || a.Family != b.Family
	}
	for b := 2; b <= 12 && !numericsDiffer(); b++ {
		e2 = mk("AGX", b)
	}

	res := DetectionResult{Scenes: scenes, EnginesCompared: 2}
	// Consistency is probed on low-contrast dusk scenes, where coverage
	// sits near the decision threshold; flips are ~0.1% of cells, so the
	// probe uses a larger scene count than the accuracy pass.
	duskCfg := cfg
	duskCfg.Dusk = true
	res.DuskScenes = 4 * scenes
	for i := 0; i < res.DuskScenes; i++ {
		dusk := dataset.Generate(duskCfg, i)
		o1, err := e1.Infer(dusk.Image)
		if err != nil {
			panic(err)
		}
		o2, err := e2.Infer(dusk.Image)
		if err != nil {
			panic(err)
		}
		for k := range o1[0].Data {
			res.CoverageCells++
			if o1[0].Data[k] != o2[0].Data[k] {
				res.CoverageCellsDiffering++
			}
		}
		d1 := detect.NMS(detect.DecodeRegions(o1[0], models.DetectorStride, 0.5), 0.4)
		d2 := detect.NMS(detect.DecodeRegions(o2[0], models.DetectorStride, 0.5), 0.4)
		if !detect.SameDetections(d1, d2) {
			res.ScenesDiffering++
		}
	}
	var tp50, fp50, fn50, tp75, fp75, fn75 int
	var clsOK, clsTotal int
	for i := 0; i < scenes; i++ {
		scene := dataset.Generate(cfg, i)
		d1 := detectScene(e1, scene)
		var truth []metrics.Rect
		for _, b := range scene.Truth {
			truth = append(truth, metrics.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		a, b, c := detect.Match(d1, truth, 0.5)
		tp50, fp50, fn50 = tp50+a, fp50+b, fn50+c
		a, b, c = detect.Match(d1, truth, 0.75)
		tp75, fp75, fn75 = tp75+a, fp75+b, fn75+c
		// class assignment against matched truth boxes
		for _, t := range scene.Truth {
			clsTotal++
			if classifyAt(scene, t) == t.Class {
				clsOK++
			}
		}
	}
	res.PrecisionAt50, res.RecallAt50 = detect.PrecisionRecall(tp50, fp50, fn50)
	res.PrecisionAt75, res.RecallAt75 = detect.PrecisionRecall(tp75, fp75, fn75)
	if clsTotal > 0 {
		res.ClassAccuracyPct = 100 * float64(clsOK) / float64(clsTotal)
	}
	return res
}

// RenderDetectionStudy formats the extension experiment.
func (l *Lab) RenderDetectionStudy() string {
	r := l.DetectionStudy(40)
	return fmt.Sprintf(`Extension: detection quality and engine consistency (%d traffic scenes)
precision/recall @ IoU 0.50: %.1f%% / %.1f%%
precision/recall @ IoU 0.75: %.1f%% / %.1f%%  (the paper's reporting threshold)
vehicle class accuracy:      %.1f%%
coverage cells computed differently by two engines of the same detector: %d/%d (%.2f%%)
dusk scenes where the decoded detection sets differ: %d/%d
(numeric disagreement is pervasive; whether it crosses the decode threshold
 depends on scene content — the paper's Tables V-VI see 0.1-0.8%% label flips)
`, r.Scenes, r.PrecisionAt50, r.RecallAt50, r.PrecisionAt75, r.RecallAt75,
		r.ClassAccuracyPct,
		r.CoverageCellsDiffering, r.CoverageCells,
		100*float64(r.CoverageCellsDiffering)/float64(maxInt1(r.CoverageCells)),
		r.ScenesDiffering, r.DuskScenes)
}

func maxInt1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// buildDetector constructs the scene-scale detection proxy.
func buildDetector(hw int) (*graph.Graph, error) {
	return models.BuildDetectorProxy("detector-proxy", hw)
}

// detectScene runs one scene through an engine and decodes detections.
func detectScene(e *core.Engine, scene dataset.Scene) []detect.Detection {
	outs, err := e.Infer(scene.Image)
	if err != nil {
		panic(err)
	}
	return detect.NMS(detect.DecodeRegions(outs[0], models.DetectorStride, 0.5), 0.4)
}

// classifyAt assigns a class to a truth box by intensity.
func classifyAt(scene dataset.Scene, b dataset.Box) dataset.VehicleClass {
	return models.ClassifyBoxIntensity(scene.Image, b.X, b.Y, b.W, b.H)
}
