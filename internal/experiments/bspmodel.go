package experiments

import (
	"fmt"
	"sort"
	"strings"

	"edgeinfer/internal/perfmodel"
)

// Table17Result captures Table XVII: per-kernel lambdas of three NX
// engines of inception-v4 and the cross-platform (NX->AGX) prediction
// error of each.
type Table17Result struct {
	Model   string
	Reports [3]perfmodel.Report
	// ErrorSpreadPct is max-min prediction error across the engines —
	// the paper observes a 2-13% change.
	ErrorSpreadPct float64
}

// bspTable runs the Table XVII methodology for a model.
func (l *Lab) bspTable(model string) Table17Result {
	nx := latencyDevice("NX")
	agx := latencyDevice("AGX")
	var res Table17Result
	res.Model = model
	lo, hi := 1e18, -1e18
	for i := 0; i < 3; i++ {
		e := l.engine(model, "NX", i+1)
		res.Reports[i] = perfmodel.CrossPredict(e, nx, agx)
		if res.Reports[i].ErrorPct < lo {
			lo = res.Reports[i].ErrorPct
		}
		if res.Reports[i].ErrorPct > hi {
			hi = res.Reports[i].ErrorPct
		}
	}
	res.ErrorSpreadPct = hi - lo
	return res
}

// Table17 reproduces Table XVII for inception-v4.
func (l *Lab) Table17() Table17Result { return l.bspTable("inceptionv4") }

// Table18 reproduces Table XVIII for mobilenet-v1.
func (l *Lab) Table18() Table17Result { return l.bspTable("mobilenetv1") }

// renderBSP formats a BSP prediction table.
func renderBSP(title string, r Table17Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (model %s, lambdas calibrated on NX, predicting AGX)\n", title, r.Model)
	// Common lambda rows for the kernels every engine used.
	common := map[string]bool{}
	for sym := range r.Reports[0].LambdaBySym {
		common[sym] = true
	}
	for _, rep := range r.Reports[1:] {
		for sym := range common {
			if _, ok := rep.LambdaBySym[sym]; !ok {
				delete(common, sym)
			}
		}
	}
	var syms []string
	for sym := range common {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	if len(syms) > 6 {
		syms = syms[:6]
	}
	fmt.Fprintf(&b, "%-58s %10s %10s %10s\n", "Kernel (lambda)", "Engine1", "Engine2", "Engine3")
	for _, sym := range syms {
		fmt.Fprintf(&b, "%-58s %10.3f %10.3f %10.3f\n", sym,
			r.Reports[0].LambdaBySym[sym], r.Reports[1].LambdaBySym[sym], r.Reports[2].LambdaBySym[sym])
	}
	fmt.Fprintf(&b, "%-58s %9.2f%% %9.2f%% %9.2f%%\n", "Prediction error on AGX",
		r.Reports[0].ErrorPct, r.Reports[1].ErrorPct, r.Reports[2].ErrorPct)
	fmt.Fprintf(&b, "Error spread across engines: %.2f%% (paper: 2-13%%)\n", r.ErrorSpreadPct)
	return b.String()
}

// RenderTable17 formats Table XVII.
func (l *Lab) RenderTable17() string { return renderBSP("Table XVII", l.Table17()) }

// RenderTable18 formats Table XVIII.
func (l *Lab) RenderTable18() string { return renderBSP("Table XVIII", l.Table18()) }
