package experiments

import (
	"fmt"
	"strings"

	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
)

func modelList() []string { return models.List() }

func mustModel(name string) *graph.Graph { return models.MustBuild(name) }

// RenderTable1 reproduces Table I: the deviceQuery view of both
// evaluation platforms.
func (l *Lab) RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table I: evaluation platforms (deviceQuery)\n\n")
	for _, spec := range gpusim.Platforms() {
		b.WriteString(spec.DeviceQuery())
		b.WriteString("\n\n")
	}
	return b.String()
}

// Table2Row is one row of Table II.
type Table2Row struct {
	Model       string
	Task        string
	Framework   string
	Convs       int
	MaxPools    int
	ModelMB     float64
	EngineNXMB  float64
	EngineAGXMB float64
}

// Table2 reproduces Table II: the model zoo with un-optimized sizes and
// per-platform engine sizes.
func (l *Lab) Table2() []Table2Row {
	var out []Table2Row
	for _, m := range modelList() {
		g := mustModel(m)
		ops := g.CountOps()
		out = append(out, Table2Row{
			Model: m, Task: g.Task, Framework: g.Framework,
			Convs: ops[graph.OpConv], MaxPools: ops[graph.OpMaxPool],
			ModelMB:     float64(g.ModelSizeBytes()) / 1e6,
			EngineNXMB:  float64(l.engine(m, "NX", 1).SizeBytes()) / 1e6,
			EngineAGXMB: float64(l.engine(m, "AGX", 1).SizeBytes()) / 1e6,
		})
	}
	return out
}

// RenderTable2 formats Table II.
func (l *Lab) RenderTable2() string {
	t := &table{
		title:  "Table II: model zoo, un-optimized sizes and TensorRT engine sizes",
		header: []string{"NN Model", "Task", "Framework", "# Layers", "Model (MB)", "Engine NX (MB)", "Engine AGX (MB)"},
	}
	for _, r := range l.Table2() {
		t.add(r.Model, r.Task, r.Framework,
			fmt.Sprintf("%d conv, %d max pool", r.Convs, r.MaxPools),
			f2(r.ModelMB), f2(r.EngineNXMB), f2(r.EngineAGXMB))
	}
	return t.String()
}

// RenderTable14 reproduces the paper's Table XIV findings summary,
// annotated with this reproduction's measured evidence.
func (l *Lab) RenderTable14() string {
	return `Table XIV: summary of empirical findings on TensorRT engines

Finding                      Summary                                                     Impact
---------------------------  ----------------------------------------------------------  -------------
Maintain task accuracy       Optimizations (pruning/quantization) shrink the overfit      Positive
                             component of trained weights: same or slightly lower error
                             (reproduced in Tables III-IV).
Non-deterministic output     Engines of one model, on one platform and across platforms,  Unpredictable
                             can disagree on the same input image (Tables V-VI: the
                             tuner picks different kernels whose accumulation orders
                             differ).
Throughput gain, higher      FP16 tensor-core kernels + fusion give order-20x FPS gains   Positive
concurrency                  and tens of concurrent streams (Table VII, Figures 3-4).
Non-deterministic inference  memcpy and some kernels are slower on the bigger platform;   Unpredictable
times                        rebuilt engines change latency (Tables VIII-XIII).
`
}

// RenderTable15 reproduces Table XV (positive application implications).
func (l *Lab) RenderTable15() string {
	return `Table XV: TensorRT positive impact on automotive applications

Finding                    Positive impact on intersection control and ADAS
-------------------------  --------------------------------------------------------------
Maintain classification    Same or slightly better accuracy improves number-plate reading
accuracy                   for fining rule-violating vehicles.
Adversarial accuracy gain  Better accuracy on corrupted images adds robustness against
                           malicious attacks for ADAS and signal control.
Throughput gain            Higher FPS keeps up with fast vehicles: no missed obstacles or
                           un-fined over-speeders.
Higher detection           One embedded platform can serve tens of camera feeds (36 on
concurrency                AGX in Figure 3).
`
}

// RenderTable16 reproduces Table XVI (negative application implications).
func (l *Lab) RenderTable16() string {
	return `Table XVI: TensorRT negative impact on automotive applications

Finding                  Negative impact on intersection control and ADAS
-----------------------  ----------------------------------------------------------------
Non-deterministic        Obstacles or violations may or may not be detected after an
detection output         engine rebuild, with identical camera input.
Non-deterministic        A number plate can read as different vehicle numbers across
classification output    engine rebuilds: legal exposure for automated fining (see
                         examples/intersection).
Slower inference on      An infrastructure upgrade to the bigger platform can ship
bigger platform          *longer* latencies (Table VIII anomalies).
Non-deterministic        WCET analysis breaks: the same model on the same platform has
inference times          different latency after every rebuild (see examples/adas).
`
}
