package experiments

import (
	"fmt"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// Chaos/soak study (extension): the self-healing replica fleet under
// seeded replica-scoped faults. Each scenario degrades one replica of a
// three-replica quorum fleet — sustained latency inflation, a stuck
// kernel, silent output corruption, or all at once — and the soak
// counts what the supervisor saw: detections, quarantines, background
// rebuilds (warm, through the shared timing cache), canary-validated
// readmissions, and — the number that must be zero — wrong-answer
// escapes, requests whose served answer differs from the serving
// replica's own pristine output. Everything is seeded and request-
// ordered, so the table and the transition transcript are byte-
// identical across runs.

// chaosFaultyBuild is the build id the faulty replica carries: a fresh
// registry hands a three-replica fleet the ids 1, 2, 3, so build 2 is
// slot 1. Rebuilt replicas are canonical (build 0) and therefore heal.
const chaosFaultyBuild = 2

// chaosScenario names one replica-fault shape of the soak.
type chaosScenario struct {
	name string
	// plan derives the fault plan for the targeted engine (the stuck-
	// kernel scenario reads the victim's own first kernel symbol).
	plan func(seed string, e *core.Engine) faults.Plan
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{"none", nil},
		{"latency-inflate", func(seed string, e *core.Engine) faults.Plan {
			return faults.Plan{Seed: seed, InflateFactor: 10}
		}},
		{"stuck-kernel", func(seed string, e *core.Engine) faults.Plan {
			sym := ""
			if len(e.Launches) > 0 {
				sym = e.Launches[0].Symbol
			}
			return faults.Plan{Seed: seed, StuckSymbol: sym, StuckStallSec: 2e-3}
		}},
		{"silent-corrupt", func(seed string, e *core.Engine) faults.Plan {
			return faults.Plan{Seed: seed, SilentCorruptRate: 0.08}
		}},
		{"havoc", func(seed string, e *core.Engine) faults.Plan {
			sym := ""
			if len(e.Launches) > 0 {
				sym = e.Launches[0].Symbol
			}
			return faults.ReplicaHavoc(seed, sym)
		}},
	}
}

// ChaosRow is one scenario of the chaos soak.
type ChaosRow struct {
	Scenario string
	Requests int

	// Who answered: quorum majorities vs the FP32 reference tier (no
	// strict majority, or an empty dispatch set).
	QuorumPct, FP32Pct float64

	// Supervisor ledger.
	Detections, Quarantines, Rebuilds, Readmissions, CanaryFailures uint64

	// Escapes counts wrong answers that reached a caller: a served
	// (non-fallback) argmax differing from the serving replica's own
	// pristine Infer. The fleet's whole job is keeping this at zero.
	Escapes int

	// FaultsInjected totals the injector ledgers of every injector the
	// scenario created (initial fleet plus post-rebuild consultations).
	FaultsInjected uint64

	// ActiveEnd is the dispatch-set size when the soak ended; fewer than
	// the fleet size means a leaked quarantine (the fleet never healed).
	ActiveEnd int

	// Transcript is the supervisor's transition log for the soak.
	Transcript []string
}

// ChaosSoak runs every scenario for one model on NX: `requests` benign
// classification requests through a fresh three-replica quorum fleet
// whose slot-1 replica carries the scenario's fault plan.
func (l *Lab) ChaosSoak(model string, requests int) ([]ChaosRow, error) {
	set := l.benignSet()
	if requests > len(set) {
		requests = len(set)
	}
	images := make([]*tensor.Tensor, requests)
	for i := 0; i < requests; i++ {
		images[i] = set[i].Image
	}
	var out []ChaosRow
	for _, sc := range chaosScenarios() {
		row, err := l.chaosScenario(model, sc, images)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func (l *Lab) chaosScenario(model string, sc chaosScenario, images []*tensor.Tensor) (ChaosRow, error) {
	reg := serve.NewRegistry(platformSpec("NX"), nil)
	var injectors []*faults.Injector
	cfg := serve.PoolConfig{
		Model:  model,
		Quorum: true,
		Canary: images[:min(4, len(images))],
	}
	if sc.plan != nil {
		seed := fmt.Sprintf("chaos/%s/%s", model, sc.name)
		cfg.ReplicaInjector = func(slot int, e *core.Engine) core.FaultInjector {
			if e.BuildID != chaosFaultyBuild {
				return nil
			}
			in := sc.plan(seed, e).New(fmt.Sprintf("replica%d", slot))
			injectors = append(injectors, in)
			return in
		}
	}
	pool, err := serve.NewPool(reg, cfg)
	if err != nil {
		return ChaosRow{}, err
	}
	// Pristine per-engine predictions for escape checks, lazily filled.
	pristine := map[*core.Engine][]int{}
	pristineArg := func(e *core.Engine, idx int) (int, error) {
		preds, ok := pristine[e]
		if !ok {
			preds = make([]int, len(images))
			for i := range preds {
				preds[i] = -2
			}
			pristine[e] = preds
		}
		if preds[idx] == -2 {
			outs, err := e.Infer(images[idx])
			if err != nil {
				return 0, err
			}
			preds[idx] = outs[0].Argmax()
		}
		return preds[idx], nil
	}
	row := ChaosRow{Scenario: sc.name, Requests: len(images)}
	for i, x := range images {
		res, err := pool.Do(x, i)
		if err != nil {
			return ChaosRow{}, fmt.Errorf("experiments: chaos %s request %d: %w", sc.name, i, err)
		}
		if res.Fallback {
			continue // the FP32 reference is the ground answer by definition
		}
		var eng *core.Engine
		for _, e := range pool.Engines() {
			if e.BuildID == res.BuildID {
				eng = e
				break
			}
		}
		if eng == nil {
			return ChaosRow{}, fmt.Errorf("experiments: chaos %s request %d served by unknown build %d", sc.name, i, res.BuildID)
		}
		want, err := pristineArg(eng, i)
		if err != nil {
			return ChaosRow{}, err
		}
		if len(res.Outputs) == 0 || res.Outputs[0].Argmax() != want {
			row.Escapes++
		}
	}
	st := pool.Stats()
	h := pool.Health()
	row.QuorumPct = 100 * float64(st.QuorumServed) / float64(st.Requests)
	row.FP32Pct = 100 * float64(st.FP32Served) / float64(st.Requests)
	row.Detections = st.Detections
	row.Quarantines = st.Quarantines
	row.Rebuilds = st.Rebuilds
	row.Readmissions = st.Readmissions
	row.CanaryFailures = st.CanaryFailures
	row.ActiveEnd = h.Active
	row.Transcript = pool.Transcript()
	for _, in := range injectors {
		row.FaultsInjected += in.Counters().Total()
	}
	return row, nil
}

// RenderChaosSoak formats the default soak: resnet18, 60 requests per
// scenario, one faulty replica in a three-replica quorum fleet
// (cmd/chaosbench's default table).
func (l *Lab) RenderChaosSoak() (string, error) {
	return l.RenderChaosSoakFor("resnet18", 60)
}

// RenderChaosSoakFor formats a parameterized soak: the scenario table
// followed by each non-empty supervisor transcript.
func (l *Lab) RenderChaosSoakFor(model string, requests int) (string, error) {
	rows, err := l.ChaosSoak(model, requests)
	if err != nil {
		return "", err
	}
	t := &table{
		title: fmt.Sprintf("Chaos soak: %s on NX, 3-replica quorum fleet, slot-1 replica faulted (%d requests/scenario)", model, requests),
		header: []string{"Scenario", "req", "quorum%", "fp32%", "detect", "quarantine",
			"rebuild", "readmit", "canary-fail", "escapes", "active", "faults"},
	}
	for _, r := range rows {
		t.add(r.Scenario, fmt.Sprintf("%d", r.Requests), f1(r.QuorumPct), f1(r.FP32Pct),
			fmt.Sprintf("%d", r.Detections), fmt.Sprintf("%d", r.Quarantines),
			fmt.Sprintf("%d", r.Rebuilds), fmt.Sprintf("%d", r.Readmissions),
			fmt.Sprintf("%d", r.CanaryFailures), fmt.Sprintf("%d", r.Escapes),
			fmt.Sprintf("%d", r.ActiveEnd), fmt.Sprintf("%d", r.FaultsInjected))
	}
	var b strings.Builder
	b.WriteString(t.String())
	for _, r := range rows {
		if len(r.Transcript) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nsupervisor transcript (%s):\n", r.Scenario)
		for _, line := range r.Transcript {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String(), nil
}
