package experiments

import (
	"fmt"
	"sort"

	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// Fault-tolerance study (extension): the paper characterizes engines on
// pristine, pinned devices; this experiment measures what a deployed
// serving stack delivers when the device degrades. A seeded fault plan
// (faults.Scenario) is swept over its base rate, and the resilient
// executor (internal/serve) answers classification requests through its
// degradation chain — tuned engine, standby engine, FP32 reference —
// reporting top-1 error of the answers actually served, latency
// percentiles, tier shares and the fault/retry ledger.

// faultTolPlatforms are the study's platforms.
var faultTolPlatforms = []string{"NX", "AGX"}

// FaultTolRow is one (platform, fault-rate) sweep point.
type FaultTolRow struct {
	Platform string
	Rate     float64

	// TRTErr is the top-1 error (%) of the answers the resilient
	// executor served; UnoptErr is the un-optimized model's error on the
	// same requests (the floor the FP32 tier degrades to).
	TRTErr, UnoptErr float64

	// Latency percentiles of served requests (proxy-scale, ms) and the
	// un-optimized reference latency on the same device.
	P50Ms, P99Ms, UnoptMs float64

	// Tier shares (%) of who answered.
	TunedPct, StandbyPct, FP32Pct float64

	// Ledger: faults injected, retries issued, breaker trips.
	Faults, Retries, BreakerTrips uint64
}

// FaultTolerance sweeps the scenario base rate for one model, serving
// `requests` benign samples per (platform, rate) point through a fresh
// executor. Everything is seeded: same arguments, same table.
func (l *Lab) FaultTolerance(model string, rates []float64, requests int) ([]FaultTolRow, error) {
	set := l.benignSet()
	if requests > len(set) {
		requests = len(set)
	}
	images := make([]*tensor.Tensor, requests)
	labels := make([]int, requests)
	for i := 0; i < requests; i++ {
		images[i], labels[i] = set[i].Image, set[i].Label
	}
	var out []FaultTolRow
	for _, platform := range faultTolPlatforms {
		dev := latencyDevice(platform)
		unoptPred, err := l.classifyUnoptE(fmt.Sprintf("ft/%s/unopt/%d", model, requests), model, images)
		if err != nil {
			return nil, err
		}
		g, err := models.BuildProxy(model, models.DefaultProxyOptions())
		if err != nil {
			return nil, err
		}
		unoptMs := core.UnoptimizedRun(g, dev) * 1e3
		for _, rate := range rates {
			inj := faults.Scenario(fmt.Sprintf("faultbench/%s/%.3f", model, rate), rate).New(platform)
			tuned, err := l.proxyEngineE(model, platform, 1)
			if err != nil {
				return nil, err
			}
			standby, err := l.proxyEngineE(model, platform, 2) // standby build
			if err != nil {
				return nil, err
			}
			ex, err := serve.New(serve.Config{
				Engine:   tuned,
				LowBatch: standby,
				Fallback: g,
				Device:   dev,
				Injector: inj,
				Seed:     "faultbench",
			})
			if err != nil {
				return nil, err
			}
			preds := make([]int, requests)
			lats := make([]float64, requests)
			for i, img := range images {
				res, err := ex.Do(img, i)
				if err != nil {
					return nil, fmt.Errorf("experiments: fault sweep %s rate %.3f request %d: %w", platform, rate, i, err)
				}
				preds[i] = res.Outputs[0].Argmax()
				lats[i] = res.LatencySec
			}
			st := ex.Stats()
			share := func(t serve.Tier) float64 {
				return 100 * float64(st.TierServed[t]) / float64(requests)
			}
			out = append(out, FaultTolRow{
				Platform: platform, Rate: rate,
				TRTErr:       metrics.Top1Error(preds, labels),
				UnoptErr:     metrics.Top1Error(unoptPred, labels),
				P50Ms:        percentile(lats, 0.50) * 1e3,
				P99Ms:        percentile(lats, 0.99) * 1e3,
				UnoptMs:      unoptMs,
				TunedPct:     share(serve.TierTuned),
				StandbyPct:   share(serve.TierLowBatch),
				FP32Pct:      share(serve.TierFP32),
				Faults:       inj.Counters().Total(),
				Retries:      st.Retries,
				BreakerTrips: st.BreakerTrips,
			})
		}
	}
	return out, nil
}

// RenderFaultTolerance formats the default sweep: resnet18 over fault
// rates 0 → 1 on both platforms (cmd/faultbench's default table).
func (l *Lab) RenderFaultTolerance() (string, error) {
	return l.RenderFaultToleranceFor("resnet18", []float64{0, 0.01, 0.05, 0.2, 0.5, 1.0}, 100)
}

// RenderFaultToleranceFor formats a parameterized sweep.
func (l *Lab) RenderFaultToleranceFor(model string, rates []float64, requests int) (string, error) {
	t := &table{
		title: fmt.Sprintf("Fault tolerance: %s served through the degradation chain (%d requests/point, proxy-scale latency)", model, requests),
		header: []string{"Platform", "FaultRate", "Err(%) served", "Err(%) unopt",
			"p50(ms)", "p99(ms)", "unopt(ms)", "tuned%", "standby%", "fp32%", "faults", "retries", "trips"},
	}
	rows, err := l.FaultTolerance(model, rates, requests)
	if err != nil {
		return "", err
	}
	for _, r := range rows {
		t.add(r.Platform, f2(r.Rate), f2(r.TRTErr), f2(r.UnoptErr),
			f2(r.P50Ms), f2(r.P99Ms), f2(r.UnoptMs),
			f1(r.TunedPct), f1(r.StandbyPct), f1(r.FP32Pct),
			fmt.Sprintf("%d", r.Faults), fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.BreakerTrips))
	}
	return t.String(), nil
}

// ThrottleRow is one (platform, severity) point of the DVFS-throttling
// sweep: full-scale engine latency under random clock drops to DropFrac
// of nominal with the governor's recovery ramp.
type ThrottleRow struct {
	Platform string
	DropFrac float64

	P50Ms, P99Ms float64
	// NominalMs is the fault-free p50 on the same device.
	NominalMs float64
	// Drops is the number of DVFS events injected over the sweep.
	Drops uint64
}

// ThrottleSweep measures timed (full-scale) engine latency under
// increasingly severe clock-drop faults: drop probability is fixed at
// 10% per kernel launch, severity is the clock fraction dropped to.
func (l *Lab) ThrottleSweep(model string, fracs []float64, requests int) ([]ThrottleRow, error) {
	var out []ThrottleRow
	for _, platform := range faultTolPlatforms {
		dev := latencyDevice(platform)
		eng := l.engine(model, platform, 1)
		nominal := make([]float64, requests)
		for i := range nominal {
			nominal[i] = eng.Run(core.RunConfig{Device: dev, RunIndex: i}).LatencySec
		}
		for _, frac := range fracs {
			plan := faults.Plan{
				Seed:             fmt.Sprintf("throttle/%s/%.2f", model, frac),
				ClockDropRate:    0.1,
				ClockDropFrac:    frac,
				ClockRecoverStep: 1.03,
			}
			inj := plan.New(platform)
			lats := make([]float64, requests)
			for i := range lats {
				// Clock-only plans should never fail a run; report it
				// rather than crash if a future fault kind changes that.
				res, err := eng.RunFaulty(core.RunConfig{Device: dev, RunIndex: i}, inj)
				if err != nil {
					return nil, fmt.Errorf("experiments: throttle sweep %s frac %.2f run %d: %w", platform, frac, i, err)
				}
				lats[i] = res.LatencySec
			}
			out = append(out, ThrottleRow{
				Platform: platform, DropFrac: frac,
				P50Ms:     percentile(lats, 0.50) * 1e3,
				P99Ms:     percentile(lats, 0.99) * 1e3,
				NominalMs: percentile(nominal, 0.50) * 1e3,
				Drops:     inj.Counters().Get(faults.KindClockDrop),
			})
		}
	}
	return out, nil
}

// RenderThrottleSweep formats the default DVFS-severity sweep for
// resnet18 (full-scale timing).
func (l *Lab) RenderThrottleSweep() (string, error) {
	t := &table{
		title:  "DVFS throttling: resnet18 latency under clock-drop faults (10% of launches drop to DropFrac, governor ramps back at 3%/launch)",
		header: []string{"Platform", "DropFrac", "p50(ms)", "p99(ms)", "nominal p50(ms)", "drops"},
	}
	rows, err := l.ThrottleSweep("resnet18", []float64{0.9, 0.75, 0.5, 0.25}, 200)
	if err != nil {
		return "", err
	}
	for _, r := range rows {
		t.add(r.Platform, f2(r.DropFrac), f2(r.P50Ms), f2(r.P99Ms), f2(r.NominalMs), fmt.Sprintf("%d", r.Drops))
	}
	return t.String(), nil
}

// percentile returns the p-quantile (0..1) of xs by nearest rank.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}
