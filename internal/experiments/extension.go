package experiments

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// Extension experiment (beyond the paper's FP16-only engines): the full
// precision study across FP32/FP16/INT8, with entropy-style percentile
// calibration for INT8. The paper lists INT8 quantization as part of
// TensorRT's optimization step 4 but evaluates FP16 engines; this
// extension completes the picture.

// PrecisionRow is one (model, precision) cell of the study.
type PrecisionRow struct {
	Model       string
	Precision   tensor.Precision
	ErrorPct    float64
	LatencyMS   float64 // full-scale engine on NX at the latency clock
	EngineMB    float64
	WeightMB    float64
	FPSGainVs32 float64
}

// PrecisionStudy runs the three classifiers at the three precisions.
func (l *Lab) PrecisionStudy() ([]PrecisionRow, error) {
	set := l.benignSet()
	images := make([]*tensor.Tensor, len(set))
	labels := make([]int, len(set))
	for i, s := range set {
		images[i], labels[i] = s.Image, s.Label
	}
	var calib []*tensor.Tensor
	for i := 0; i < 8 && i < len(images); i++ {
		calib = append(calib, images[i])
	}
	dev := latencyDevice("NX")
	var out []PrecisionRow
	for _, m := range classifierModels {
		proxy, err := models.BuildProxy(m, models.DefaultProxyOptions())
		if err != nil {
			return nil, err
		}
		full, err := models.Build(m)
		if err != nil {
			return nil, err
		}
		var fp32ms float64
		for _, prec := range []tensor.Precision{tensor.FP32, tensor.FP16, tensor.INT8} {
			cfg := core.DefaultConfig(platformSpec("NX"), 1)
			cfg.Precision = prec
			if prec == tensor.INT8 {
				cfg.Calibrator = core.PercentileCalibrator{Images: calib, Pct: 99.9}
			}
			pe, err := core.Build(proxy, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: build %s proxy at %s: %w", m, prec, err)
			}
			key := fmt.Sprintf("prec/%s/%s", m, prec)
			pred, err := l.classifyE(key, pe, images)
			if err != nil {
				return nil, err
			}
			fullCfg := core.DefaultConfig(platformSpec("NX"), 1)
			fullCfg.Precision = prec
			fe, err := core.Build(full, fullCfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: build %s at %s: %w", m, prec, err)
			}
			lat := fe.Run(core.RunConfig{Device: dev}).LatencySec * 1e3
			if prec == tensor.FP32 {
				fp32ms = lat
			}
			out = append(out, PrecisionRow{
				Model: m, Precision: prec,
				ErrorPct:    metrics.Top1Error(pred, labels),
				LatencyMS:   lat,
				EngineMB:    float64(fe.SizeBytes()) / 1e6,
				WeightMB:    float64(fe.WeightBytes()) / 1e6,
				FPSGainVs32: fp32ms / lat,
			})
		}
	}
	return out, nil
}

// RenderPrecisionStudy formats the extension table.
func (l *Lab) RenderPrecisionStudy() (string, error) {
	rows, err := l.PrecisionStudy()
	if err != nil {
		return "", err
	}
	t := &table{
		title:  "Extension: precision study (FP32/FP16/INT8 engines on NX, percentile-calibrated INT8)",
		header: []string{"NN Model", "Precision", "Top-1 Err(%)", "Latency (ms)", "Weights (MB)", "Engine (MB)", "Speedup vs FP32"},
	}
	for _, r := range rows {
		t.add(r.Model, r.Precision.String(), f2(r.ErrorPct), f2(r.LatencyMS),
			f2(r.WeightMB), f2(r.EngineMB), f2(r.FPSGainVs32)+"x")
	}
	return t.String(), nil
}
