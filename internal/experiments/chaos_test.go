package experiments

import (
	"strings"
	"testing"
)

// The soak's core guarantees (issue acceptance criteria): every faulted
// scenario detects, quarantines, rebuilds and readmits the sick
// replica; no wrong answer ever escapes; no quarantine leaks past the
// end of the soak; and the control scenario records nothing at all.
func TestChaosSoakInvariants(t *testing.T) {
	l := NewLab(Default())
	rows, err := l.ChaosSoak("resnet18", 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(chaosScenarios()) {
		t.Fatalf("%d rows, want %d", len(rows), len(chaosScenarios()))
	}
	for _, r := range rows {
		if r.Escapes != 0 {
			t.Errorf("%s: %d wrong-answer escapes", r.Scenario, r.Escapes)
		}
		if r.ActiveEnd != 3 {
			t.Errorf("%s: %d active replicas at soak end (leaked quarantine)\n%s",
				r.Scenario, r.ActiveEnd, strings.Join(r.Transcript, "\n"))
		}
		if r.Scenario == "none" {
			if r.Detections != 0 || r.Quarantines != 0 || len(r.Transcript) != 0 || r.FaultsInjected != 0 {
				t.Errorf("control scenario recorded activity: %+v", r)
			}
			continue
		}
		if r.Detections == 0 || r.Quarantines == 0 || r.Rebuilds == 0 || r.Readmissions == 0 {
			t.Errorf("%s: lifecycle incomplete: %+v\n%s", r.Scenario, r, strings.Join(r.Transcript, "\n"))
		}
		if r.FaultsInjected == 0 {
			t.Errorf("%s: no faults counted", r.Scenario)
		}
	}
}

// Same seed, same soak: the rendered study — table and transcripts — is
// byte-identical across runs.
func TestChaosSoakDeterministic(t *testing.T) {
	a, err := NewLab(Default()).RenderChaosSoakFor("resnet18", 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab(Default()).RenderChaosSoakFor("resnet18", 24)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed chaos renders differ:\n--- a:\n%s\n--- b:\n%s", a, b)
	}
	if !strings.Contains(a, "rebuilding->readmitted") {
		t.Fatal("render missing the healing transcript")
	}
}
