package experiments

import "testing"

func TestFaultToleranceEndpoints(t *testing.T) {
	l := NewLab(Default())
	rows, err := l.FaultTolerance("resnet18", []float64{0, 1}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 platforms x 2 rates
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TunedPct+r.StandbyPct+r.FP32Pct != 100 {
			t.Fatalf("%s rate %.0f: tier shares sum to %.1f", r.Platform, r.Rate, r.TunedPct+r.StandbyPct+r.FP32Pct)
		}
		switch r.Rate {
		case 0:
			// Pristine: everything served by the tuned engine, no ledger.
			if r.TunedPct != 100 || r.Faults != 0 || r.Retries != 0 {
				t.Fatalf("%s rate 0 not pristine: %+v", r.Platform, r)
			}
		case 1:
			// Total faults: every answer comes from the FP32 floor, so the
			// served error equals the un-optimized error.
			if r.FP32Pct != 100 {
				t.Fatalf("%s rate 1 served %+v, want all fp32", r.Platform, r)
			}
			if r.TRTErr != r.UnoptErr {
				t.Fatalf("%s rate 1: served err %.2f != unopt err %.2f", r.Platform, r.TRTErr, r.UnoptErr)
			}
			if r.Faults == 0 {
				t.Fatalf("%s rate 1 counted no faults", r.Platform)
			}
		}
	}
}

func TestThrottleSweepStretchesLatency(t *testing.T) {
	l := NewLab(Default())
	rows, err := l.ThrottleSweep("resnet18", []float64{0.5}, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.P50Ms <= r.NominalMs {
			t.Fatalf("%s: throttled p50 %.2fms not above nominal %.2fms", r.Platform, r.P50Ms, r.NominalMs)
		}
		if r.Drops == 0 {
			t.Fatalf("%s: no clock drops injected", r.Platform)
		}
	}
}

func TestFaultToleranceDeterministic(t *testing.T) {
	a, errA := NewLab(Default()).FaultTolerance("resnet18", []float64{0.2}, 10)
	b, errB := NewLab(Default()).FaultTolerance("resnet18", []float64{0.2}, 10)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
