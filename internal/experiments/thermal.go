package experiments

import (
	"fmt"

	"edgeinfer/internal/gpusim"
)

// Extension experiment: sustained-load thermal drift. The paper's WCET
// warnings concern engine rebuilds; thermal throttling is the other way
// the same engine's latency moves under the operator's feet. tegrastats
// exposes the thermal fields; this study runs the thermal circuit.

// ThermalRow summarizes one platform's sustained run.
type ThermalRow struct {
	Platform        string
	AmbientC        float64
	TimeToThrottleS float64 // -1 if never
	SteadyClockMHz  float64
	StartFPS        float64
	SteadyFPS       float64
	FPSDropPct      float64
	PeakTempC       float64
}

// ThermalStudy simulates 20 minutes of saturating Tiny-YOLOv3 service in
// a 35C roadside cabinet on both platforms.
func (l *Lab) ThermalStudy() []ThermalRow {
	const (
		ambient  = 35.0
		duration = 1200.0
		step     = 1.0
	)
	var out []ThermalRow
	for _, p := range []string{"NX", "AGX"} {
		dev := maxDevice(p)
		e := l.engine("tiny-yolov3", p, 1)
		load := e.StreamLoad(dev)
		sat := gpusim.SaturationThreads(dev, load)
		util := gpusim.GPUUtilization(dev, load, sat)
		samples := gpusim.SimulateSustainedLoad(dev, util, ambient, duration, step)

		row := ThermalRow{Platform: p, AmbientC: ambient, TimeToThrottleS: -1}
		for _, s := range samples {
			if s.TempC > row.PeakTempC {
				row.PeakTempC = s.TempC
			}
			if s.Throttled && row.TimeToThrottleS < 0 {
				row.TimeToThrottleS = s.TimeSec
			}
		}
		row.SteadyClockMHz = gpusim.SteadyStateClock(samples)
		row.StartFPS = gpusim.ThreadFPS(dev, load, sat)
		// FPS at the throttled clock: GPU time scales inversely with clock.
		throttledDev := gpusim.NewDevice(platformSpec(p), row.SteadyClockMHz)
		throttledLoad := e.StreamLoad(throttledDev)
		row.SteadyFPS = gpusim.ThreadFPS(throttledDev, throttledLoad, sat)
		if row.StartFPS > 0 {
			row.FPSDropPct = 100 * (row.StartFPS - row.SteadyFPS) / row.StartFPS
		}
		out = append(out, row)
	}
	return out
}

// RenderThermalStudy formats the thermal extension.
func (l *Lab) RenderThermalStudy() string {
	t := &table{
		title:  "Extension: sustained-load thermal drift (tiny-yolov3 at saturation, 35C cabinet, 20 min)",
		header: []string{"Platform", "Peak temp (C)", "Throttles after (s)", "Steady clock (MHz)", "FPS start", "FPS steady", "FPS drop"},
	}
	for _, r := range l.ThermalStudy() {
		throttle := "never"
		if r.TimeToThrottleS >= 0 {
			throttle = fmt.Sprintf("%.0f", r.TimeToThrottleS)
		}
		t.add(r.Platform, f1(r.PeakTempC), throttle, fmt.Sprintf("%.0f", r.SteadyClockMHz),
			f1(r.StartFPS), f1(r.SteadyFPS), f1(r.FPSDropPct)+"%")
	}
	return t.String()
}
