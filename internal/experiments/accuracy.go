package experiments

import (
	"fmt"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/tensor"
)

// classifierModels are the networks of the paper's accuracy tables.
var classifierModels = []string{"alexnet", "resnet18", "vgg16"}

// consistencyModels are the networks of Table V.
var consistencyModels = []string{"resnet18", "vgg16", "inceptionv4", "alexnet"}

// Table3Row is one row of Table III: benign top-1 error.
type Table3Row struct {
	Model                         string
	AGXError, NXError, UnoptError float64
}

// Table3 reproduces Table III: top-1 error on the benign dataset for
// TensorRT engines (built on AGX and NX) vs the un-optimized model.
func (l *Lab) Table3() []Table3Row {
	set := l.benignSet()
	images := make([]*tensor.Tensor, len(set))
	labels := make([]int, len(set))
	for i, s := range set {
		images[i], labels[i] = s.Image, s.Label
	}
	out := make([]Table3Row, len(classifierModels))
	l.fanModels(len(classifierModels), func(mi int) {
		m := classifierModels[mi]
		agx := l.classify("t3/"+m+"/agx", l.proxyEngine(m, "AGX", 1), images)
		nx := l.classify("t3/"+m+"/nx", l.proxyEngine(m, "NX", 1), images)
		un := l.classifyUnopt("t3/"+m+"/unopt", m, images)
		out[mi] = Table3Row{
			Model:      m,
			AGXError:   metrics.Top1Error(agx, labels),
			NXError:    metrics.Top1Error(nx, labels),
			UnoptError: metrics.Top1Error(un, labels),
		}
	})
	return out
}

// RenderTable3 formats Table III in the paper's layout.
func (l *Lab) RenderTable3() string {
	t := &table{
		title:  "Table III: Top-1 Error(%) on benign dataset (TensorRT vs un-optimized)",
		header: []string{"NN Model", "AGX Error(%) TRT", "NX Error(%) TRT", "Error(%) Unopt"},
	}
	for _, r := range l.Table3() {
		t.add(r.Model, f2(r.AGXError), f2(r.NXError), f2(r.UnoptError))
	}
	return t.String()
}

// Table4Row is one row of Table IV: adversarial top-1 error by severity.
type Table4Row struct {
	Model                         string
	Severity                      int
	AGXError, NXError, UnoptError float64
}

// Table4 reproduces Table IV: top-1 error on the corrupted dataset at
// severities 1 and 5.
func (l *Lab) Table4() []Table4Row {
	set := l.advSet()
	bySev := map[int][]int{} // severity -> sample indices
	images := make([]*tensor.Tensor, len(set))
	labels := make([]int, len(set))
	for i, s := range set {
		images[i], labels[i] = s.Image, s.Label
		bySev[s.Severity] = append(bySev[s.Severity], i)
	}
	sub := func(pred []int, idx []int) ([]int, []int) {
		p := make([]int, len(idx))
		lb := make([]int, len(idx))
		for j, i := range idx {
			p[j], lb[j] = pred[i], labels[i]
		}
		return p, lb
	}
	sevs := []int{1, 5}
	out := make([]Table4Row, len(classifierModels)*len(sevs))
	l.fanModels(len(classifierModels), func(mi int) {
		m := classifierModels[mi]
		agx := l.classify("t4/"+m+"/agx", l.proxyEngine(m, "AGX", 1), images)
		nx := l.classify("t4/"+m+"/nx", l.proxyEngine(m, "NX", 1), images)
		un := l.classifyUnopt("t4/"+m+"/unopt", m, images)
		for si, sev := range sevs {
			idx := bySev[sev]
			pa, la := sub(agx, idx)
			pn, ln := sub(nx, idx)
			pu, lu := sub(un, idx)
			out[mi*len(sevs)+si] = Table4Row{
				Model: m, Severity: sev,
				AGXError:   metrics.Top1Error(pa, la),
				NXError:    metrics.Top1Error(pn, ln),
				UnoptError: metrics.Top1Error(pu, lu),
			}
		}
	})
	return out
}

// RenderTable4 formats Table IV.
func (l *Lab) RenderTable4() string {
	t := &table{
		title:  "Table IV: Top-1 Error(%) on adversarial dataset (severity 1 and 5)",
		header: []string{"NN Model", "Severity", "AGX Error(%) TRT", "NX Error(%) TRT", "Error(%) Unopt"},
	}
	for _, r := range l.Table4() {
		t.add(r.Model, fmt.Sprintf("%d", r.Severity), f2(r.AGXError), f2(r.NXError), f2(r.UnoptError))
	}
	return t.String()
}

// consistencyImages returns the image set used by the consistency tables
// (the paper uses the adversarial set's 60000 predictions).
func (l *Lab) consistencyImages() []*tensor.Tensor {
	set := l.advSet()
	images := make([]*tensor.Tensor, len(set))
	for i, s := range set {
		images[i] = s.Image
	}
	return images
}

// Table5Row is one model's cross-platform mismatch counts (NXi vs AGXj).
type Table5Row struct {
	Model      string
	Mismatches [3][3]int // [nx engine i][agx engine j]
	Total      int
}

// Table5 reproduces Table V: number of differing predictions between
// engines built on NX and engines built on AGX, over the adversarial set.
func (l *Lab) Table5() []Table5Row {
	images := l.consistencyImages()
	n := l.Opts.EnginesPerSide
	if n > 3 {
		n = 3
	}
	out := make([]Table5Row, len(consistencyModels))
	l.fanModels(len(consistencyModels), func(mi int) {
		m := consistencyModels[mi]
		var row Table5Row
		row.Model = m
		row.Total = len(images)
		var nxPreds, agxPreds [3][]int
		for i := 0; i < n; i++ {
			nxPreds[i] = l.classify(fmt.Sprintf("cons/%s/nx%d", m, i+1), l.proxyEngine(m, "NX", i+1), images)
			agxPreds[i] = l.classify(fmt.Sprintf("cons/%s/agx%d", m, i+1), l.proxyEngine(m, "AGX", i+1), images)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				row.Mismatches[i][j] = metrics.Mismatches(nxPreds[i], agxPreds[j])
			}
		}
		out[mi] = row
	})
	return out
}

// RenderTable5 formats Table V.
func (l *Lab) RenderTable5() string {
	t := &table{
		title: "Table V: differing predictions across cross-platform engine pairs",
		header: []string{"NN Model", "NX1-AGX1", "NX1-AGX2", "NX1-AGX3",
			"NX2-AGX1", "NX2-AGX2", "NX2-AGX3", "NX3-AGX1", "NX3-AGX2", "NX3-AGX3", "of"},
	}
	for _, r := range l.Table5() {
		cells := []string{r.Model}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				cells = append(cells, fmt.Sprintf("%d", r.Mismatches[i][j]))
			}
		}
		cells = append(cells, fmt.Sprintf("%d", r.Total))
		t.add(cells...)
	}
	return t.String()
}

// Table6Row is one platform-specific engine-pair mismatch record.
type Table6Row struct {
	Platform string
	Model    string
	M12      int
	M23      int
	M13      int
	Total    int
}

// Table6 reproduces Table VI: mismatches across engines built on the
// same platform.
func (l *Lab) Table6() []Table6Row {
	images := l.consistencyImages()
	cases := []struct{ platform, model string }{
		{"NX", "resnet18"}, {"AGX", "vgg16"}, {"AGX", "inceptionv4"}, {"AGX", "resnet18"},
	}
	out := make([]Table6Row, len(cases))
	l.fanModels(len(cases), func(ci int) {
		c := cases[ci]
		var preds [3][]int
		for i := 0; i < 3; i++ {
			preds[i] = l.classify(fmt.Sprintf("cons/%s/%s%d", c.model, map[string]string{"NX": "nx", "AGX": "agx"}[c.platform], i+1),
				l.proxyEngine(c.model, c.platform, i+1), images)
		}
		out[ci] = Table6Row{
			Platform: c.platform, Model: c.model,
			M12:   metrics.Mismatches(preds[0], preds[1]),
			M23:   metrics.Mismatches(preds[1], preds[2]),
			M13:   metrics.Mismatches(preds[0], preds[2]),
			Total: len(images),
		}
	})
	return out
}

// RenderTable6 formats Table VI.
func (l *Lab) RenderTable6() string {
	t := &table{
		title:  "Table VI: differing predictions across engines on the same platform",
		header: []string{"Platform", "NN Model", "Engines 1-2", "Engines 2-3", "Engines 1-3", "of"},
	}
	for _, r := range l.Table6() {
		t.add(r.Platform, r.Model, fmt.Sprintf("%d", r.M12), fmt.Sprintf("%d", r.M23),
			fmt.Sprintf("%d", r.M13), fmt.Sprintf("%d", r.Total))
	}
	return t.String()
}

var _ = dataset.NumClasses
