// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I–XVIII, Figures 3–4) on the simulator. Each
// generator returns structured results plus a paper-style text rendering;
// cmd/benchtables drives them, the root benchmarks time them, and
// EXPERIMENTS.md records their output against the paper's numbers.
package experiments

import (
	"fmt"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// Options scales the experiments. The paper's full scale (50 benign and
// 20 adversarial images per class, 10 latency runs) takes minutes in the
// numeric experiments; the default is a faster, statistically similar
// configuration.
type Options struct {
	BenignPerClass int // paper: 50
	AdvPerClass    int // paper: 20
	AdvTypes       []dataset.Corruption
	Runs           int // latency repetitions, paper: 10
	EnginesPerSide int // engines per platform in consistency experiments, paper: 3

	// TimingCacheDir, when set, persists per-build-id timing caches there
	// and attaches them to every engine build. Caches are scoped per
	// build id (never shared across ids) so the consistency experiments
	// (Tables V/VI, XII/XIII) keep their build-to-build divergence; within
	// one build id regeneration becomes warm — the tables are identical
	// across reruns and the tactic-timing cost is paid only once.
	TimingCacheDir string
}

// Default returns the fast configuration.
func Default() Options {
	return Options{BenignPerClass: 10, AdvPerClass: 1, AdvTypes: dataset.Corruptions(), Runs: 10, EnginesPerSide: 3}
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{BenignPerClass: 50, AdvPerClass: 20, AdvTypes: dataset.Corruptions(), Runs: 10, EnginesPerSide: 3}
}

// Lab builds and caches engines, proxies and datasets across experiments.
type Lab struct {
	Opts Options

	engines map[string]*core.Engine
	tcaches map[int]*core.TimingCache
	preds   map[string][]int
	benign  []dataset.Sample
	adv     []dataset.AdversarialSample
}

// NewLab creates a lab with the given options.
func NewLab(opts Options) *Lab {
	return &Lab{
		Opts:    opts,
		engines: map[string]*core.Engine{},
		tcaches: map[int]*core.TimingCache{},
		preds:   map[string][]int{},
	}
}

// timingCachePath names one build id's cache file.
func timingCachePath(dir string, build int) string {
	return fmt.Sprintf("%s/tc_build%d.bin", dir, build)
}

// timingCache returns the build id's shared cache (nil when caching is
// off), loading a previously persisted file on first use.
func (l *Lab) timingCache(build int) *core.TimingCache {
	if l.Opts.TimingCacheDir == "" {
		return nil
	}
	if c, ok := l.tcaches[build]; ok {
		return c
	}
	c, err := core.LoadTimingCacheFile(timingCachePath(l.Opts.TimingCacheDir, build))
	if err != nil {
		c = core.NewTimingCache() // absent or unreadable: start cold
	}
	l.tcaches[build] = c
	return c
}

// SaveTimingCaches persists every build id's cache into TimingCacheDir.
// A no-op when caching is off.
func (l *Lab) SaveTimingCaches() error {
	for build, c := range l.tcaches {
		if err := c.SaveFile(timingCachePath(l.Opts.TimingCacheDir, build)); err != nil {
			return fmt.Errorf("experiments: save timing cache for build %d: %w", build, err)
		}
	}
	return nil
}

// platformSpec maps short names to specs.
func platformSpec(short string) gpusim.DeviceSpec {
	if short == "AGX" {
		return gpusim.XavierAGX()
	}
	return gpusim.XavierNX()
}

// latencyDevice returns the platform at the paper's pinned latency clock.
func latencyDevice(short string) *gpusim.Device {
	spec := platformSpec(short)
	return gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
}

// maxDevice returns the platform at the paper's max (concurrency) clock.
func maxDevice(short string) *gpusim.Device {
	spec := platformSpec(short)
	return gpusim.NewDevice(spec, gpusim.PaperMaxClock(spec))
}

// engine builds (or returns cached) a full-scale engine.
func (l *Lab) engine(model, platform string, build int) *core.Engine {
	key := fmt.Sprintf("full/%s/%s/%d", model, platform, build)
	if e, ok := l.engines[key]; ok {
		return e
	}
	g := models.MustBuild(model)
	cfg := core.DefaultConfig(platformSpec(platform), build)
	cfg.TimingCache = l.timingCache(build)
	e, err := core.Build(g, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: build %s: %v", key, err))
	}
	l.engines[key] = e
	return e
}

// proxyEngineE builds (or returns cached) a numeric proxy engine,
// surfacing build failures as errors.
func (l *Lab) proxyEngineE(model, platform string, build int) (*core.Engine, error) {
	key := fmt.Sprintf("proxy/%s/%s/%d", model, platform, build)
	if e, ok := l.engines[key]; ok {
		return e, nil
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(platformSpec(platform), build)
	cfg.TimingCache = l.timingCache(build)
	e, err := core.Build(g, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: build %s: %w", key, err)
	}
	l.engines[key] = e
	return e, nil
}

// proxyEngine is proxyEngineE for the paper-table generators, whose
// model set is static and trusted.
func (l *Lab) proxyEngine(model, platform string, build int) *core.Engine {
	e, err := l.proxyEngineE(model, platform, build)
	if err != nil {
		panic(err)
	}
	return e
}

// benignSet lazily synthesizes the benign dataset.
func (l *Lab) benignSet() []dataset.Sample {
	if l.benign == nil {
		l.benign = dataset.Benign(dataset.DefaultBenign(l.Opts.BenignPerClass))
	}
	return l.benign
}

// advSet lazily synthesizes the adversarial dataset.
func (l *Lab) advSet() []dataset.AdversarialSample {
	if l.adv == nil {
		cfg := dataset.DefaultAdversarial(l.Opts.AdvPerClass)
		cfg.Types = l.Opts.AdvTypes
		l.adv = dataset.Adversarial(cfg)
	}
	return l.adv
}

// classifyE runs an engine over images, caching predictions under key
// and surfacing inference failures as errors.
func (l *Lab) classifyE(key string, e *core.Engine, images []*tensor.Tensor) ([]int, error) {
	if p, ok := l.preds[key]; ok {
		return p, nil
	}
	out := make([]int, len(images))
	for i, img := range images {
		o, err := e.Infer(img)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: image %d: %w", key, i, err)
		}
		out[i] = o[0].Argmax()
	}
	l.preds[key] = out
	return out, nil
}

// classify is classifyE for the paper-table generators, whose static
// model/dataset combinations cannot fail inference.
func (l *Lab) classify(key string, e *core.Engine, images []*tensor.Tensor) []int {
	p, err := l.classifyE(key, e, images)
	if err != nil {
		panic(err)
	}
	return p
}

// classifyUnoptE runs the un-optimized proxy over images, surfacing
// build and inference failures as errors.
func (l *Lab) classifyUnoptE(key, model string, images []*tensor.Tensor) ([]int, error) {
	if p, ok := l.preds[key]; ok {
		return p, nil
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return nil, err
	}
	out := make([]int, len(images))
	for i, img := range images {
		o, err := core.UnoptimizedInfer(g, img)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: image %d: %w", key, i, err)
		}
		out[i] = o[0].Argmax()
	}
	l.preds[key] = out
	return out, nil
}

// classifyUnopt is classifyUnoptE for the paper-table generators.
func (l *Lab) classifyUnopt(key, model string, images []*tensor.Tensor) []int {
	p, err := l.classifyUnoptE(key, model, images)
	if err != nil {
		panic(err)
	}
	return p
}

// table is a minimal text-table renderer for paper-style output.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
