// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I–XVIII, Figures 3–4) on the simulator. Each
// generator returns structured results plus a paper-style text rendering;
// cmd/benchtables drives them, the root benchmarks time them, and
// EXPERIMENTS.md records their output against the paper's numbers.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// Options scales the experiments. The paper's full scale (50 benign and
// 20 adversarial images per class, 10 latency runs) takes minutes in the
// numeric experiments; the default is a faster, statistically similar
// configuration.
type Options struct {
	BenignPerClass int // paper: 50
	AdvPerClass    int // paper: 20
	AdvTypes       []dataset.Corruption
	Runs           int // latency repetitions, paper: 10
	EnginesPerSide int // engines per platform in consistency experiments, paper: 3

	// TimingCacheDir, when set, persists per-build-id timing caches there
	// and attaches them to every engine build. Caches are scoped per
	// build id (never shared across ids) so the consistency experiments
	// (Tables V/VI, XII/XIII) keep their build-to-build divergence; within
	// one build id regeneration becomes warm — the tables are identical
	// across reruns and the tactic-timing cost is paid only once.
	TimingCacheDir string

	// Workers fans the per-image classification loops and the per-model
	// accuracy-table loops across this many goroutines (0 = GOMAXPROCS).
	// Results are deterministic for any worker count: outputs are placed
	// by index and kernel execution is bit-identical regardless of
	// parallelism. Set 1 to force the fully serial paths.
	Workers int
}

// Default returns the fast configuration.
func Default() Options {
	return Options{BenignPerClass: 10, AdvPerClass: 1, AdvTypes: dataset.Corruptions(), Runs: 10, EnginesPerSide: 3}
}

// Full returns the paper-scale configuration.
func Full() Options {
	return Options{BenignPerClass: 50, AdvPerClass: 20, AdvTypes: dataset.Corruptions(), Runs: 10, EnginesPerSide: 3}
}

// Lab builds and caches engines, proxies and datasets across experiments.
// All caches are safe for the concurrent access the fan-out paths
// perform; engine builds are deduplicated so concurrent table goroutines
// hitting the same engine key build it exactly once.
type Lab struct {
	Opts Options

	mu       sync.Mutex
	engines  map[string]*core.Engine
	building map[string]*buildCell
	tcaches  map[int]*core.TimingCache
	preds    map[string][]int
	benign   []dataset.Sample
	adv      []dataset.AdversarialSample
}

// NewLab creates a lab with the given options.
func NewLab(opts Options) *Lab {
	return &Lab{
		Opts:     opts,
		engines:  map[string]*core.Engine{},
		building: map[string]*buildCell{},
		tcaches:  map[int]*core.TimingCache{},
		preds:    map[string][]int{},
	}
}

// workers is the fan-out width for per-image loops.
func (l *Lab) workers() int {
	if w := l.Opts.Workers; w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// modelWorkers is the fan-out width for per-model table loops. Cold
// engine builds sharing a timing cache are order-sensitive (entries
// inserted by one engine's tuning are visible to the next lookup, so
// tactic choices depend on build order); model-level fan-out therefore
// degrades to serial when a cache directory is configured. Per-image
// fan-out never builds engines, so it stays parallel either way.
func (l *Lab) modelWorkers() int {
	if l.Opts.TimingCacheDir != "" {
		return 1
	}
	return l.workers()
}

// forEach runs fn(i) for every i in [0,n) across up to workers
// goroutines, handing out indices through an atomic cursor. The outcome
// is deterministic for any worker count and schedule: callers write
// results into their own slices by index, and the surfaced failure is
// always the lowest-indexed one (a panic at that index takes precedence
// and is re-raised on the calling goroutine).
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panics[i] = r
					}
				}()
				errs[i] = fn(i)
			}()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i])
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// fanModels fans fn across model/case indices for the table generators,
// whose static configurations fail only by panicking.
func (l *Lab) fanModels(n int, fn func(i int)) {
	if err := forEach(l.modelWorkers(), n, func(i int) error {
		fn(i)
		return nil
	}); err != nil {
		panic(err) // unreachable: fn signals failure only by panicking
	}
}

// timingCachePath names one build id's cache file.
func timingCachePath(dir string, build int) string {
	return fmt.Sprintf("%s/tc_build%d.bin", dir, build)
}

// timingCache returns the build id's shared cache (nil when caching is
// off), loading a previously persisted file on first use.
func (l *Lab) timingCache(build int) *core.TimingCache {
	if l.Opts.TimingCacheDir == "" {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.tcaches[build]; ok {
		return c
	}
	c, err := core.LoadTimingCacheFile(timingCachePath(l.Opts.TimingCacheDir, build))
	if err != nil {
		c = core.NewTimingCache() // absent or unreadable: start cold
	}
	l.tcaches[build] = c
	return c
}

// SaveTimingCaches persists every build id's cache into TimingCacheDir.
// A no-op when caching is off.
func (l *Lab) SaveTimingCaches() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for build, c := range l.tcaches {
		if err := c.SaveFile(timingCachePath(l.Opts.TimingCacheDir, build)); err != nil {
			return fmt.Errorf("experiments: save timing cache for build %d: %w", build, err)
		}
	}
	return nil
}

// platformSpec maps short names to specs.
func platformSpec(short string) gpusim.DeviceSpec {
	if short == "AGX" {
		return gpusim.XavierAGX()
	}
	return gpusim.XavierNX()
}

// latencyDevice returns the platform at the paper's pinned latency clock.
func latencyDevice(short string) *gpusim.Device {
	spec := platformSpec(short)
	return gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
}

// maxDevice returns the platform at the paper's max (concurrency) clock.
func maxDevice(short string) *gpusim.Device {
	spec := platformSpec(short)
	return gpusim.NewDevice(spec, gpusim.PaperMaxClock(spec))
}

// buildCell is an in-flight engine build other goroutines can wait on.
type buildCell struct {
	done chan struct{}
	e    *core.Engine
	err  error
}

// cachedEngine returns the engine cached under key, building it at most
// once across concurrent callers: the first caller runs build, everyone
// else waits on its result. A panic inside build is converted to an
// error so waiters never hang.
func (l *Lab) cachedEngine(key string, build func() (*core.Engine, error)) (*core.Engine, error) {
	l.mu.Lock()
	if e, ok := l.engines[key]; ok {
		l.mu.Unlock()
		return e, nil
	}
	if c, ok := l.building[key]; ok {
		l.mu.Unlock()
		<-c.done
		return c.e, c.err
	}
	c := &buildCell{done: make(chan struct{})}
	l.building[key] = c
	l.mu.Unlock()
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.e, c.err = nil, fmt.Errorf("experiments: build %s panicked: %v", key, r)
			}
		}()
		c.e, c.err = build()
	}()
	l.mu.Lock()
	if c.err == nil {
		l.engines[key] = c.e
	}
	delete(l.building, key)
	l.mu.Unlock()
	close(c.done)
	return c.e, c.err
}

// engine builds (or returns cached) a full-scale engine.
func (l *Lab) engine(model, platform string, build int) *core.Engine {
	key := fmt.Sprintf("full/%s/%s/%d", model, platform, build)
	e, err := l.cachedEngine(key, func() (*core.Engine, error) {
		g := models.MustBuild(model)
		cfg := core.DefaultConfig(platformSpec(platform), build)
		cfg.TimingCache = l.timingCache(build)
		return core.Build(g, cfg)
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: build %s: %v", key, err))
	}
	return e
}

// proxyEngineE builds (or returns cached) a numeric proxy engine,
// surfacing build failures as errors.
func (l *Lab) proxyEngineE(model, platform string, build int) (*core.Engine, error) {
	key := fmt.Sprintf("proxy/%s/%s/%d", model, platform, build)
	return l.cachedEngine(key, func() (*core.Engine, error) {
		g, err := models.BuildProxy(model, models.DefaultProxyOptions())
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(platformSpec(platform), build)
		cfg.TimingCache = l.timingCache(build)
		e, err := core.Build(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: build %s: %w", key, err)
		}
		return e, nil
	})
}

// proxyEngine is proxyEngineE for the paper-table generators, whose
// model set is static and trusted.
func (l *Lab) proxyEngine(model, platform string, build int) *core.Engine {
	e, err := l.proxyEngineE(model, platform, build)
	if err != nil {
		panic(err)
	}
	return e
}

// benignSet lazily synthesizes the benign dataset.
func (l *Lab) benignSet() []dataset.Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.benign == nil {
		l.benign = dataset.Benign(dataset.DefaultBenign(l.Opts.BenignPerClass))
	}
	return l.benign
}

// advSet lazily synthesizes the adversarial dataset.
func (l *Lab) advSet() []dataset.AdversarialSample {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.adv == nil {
		cfg := dataset.DefaultAdversarial(l.Opts.AdvPerClass)
		cfg.Types = l.Opts.AdvTypes
		l.adv = dataset.Adversarial(cfg)
	}
	return l.adv
}

func (l *Lab) cachedPred(key string) ([]int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.preds[key]
	return p, ok
}

func (l *Lab) setPred(key string, p []int) {
	l.mu.Lock()
	l.preds[key] = p
	l.mu.Unlock()
}

// classifyE runs an engine over images, caching predictions under key
// and surfacing inference failures as errors. Images fan out across the
// lab's workers; predictions land by index and the surfaced error is the
// lowest-indexed failure, so the result is identical to the serial loop.
func (l *Lab) classifyE(key string, e *core.Engine, images []*tensor.Tensor) ([]int, error) {
	if p, ok := l.cachedPred(key); ok {
		return p, nil
	}
	out := make([]int, len(images))
	err := forEach(l.workers(), len(images), func(i int) error {
		o, err := e.Infer(images[i])
		if err != nil {
			return fmt.Errorf("experiments: %s: image %d: %w", key, i, err)
		}
		out[i] = o[0].Argmax()
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.setPred(key, out)
	return out, nil
}

// classify is classifyE for the paper-table generators, whose static
// model/dataset combinations cannot fail inference.
func (l *Lab) classify(key string, e *core.Engine, images []*tensor.Tensor) []int {
	p, err := l.classifyE(key, e, images)
	if err != nil {
		panic(err)
	}
	return p
}

// classifyUnoptE runs the un-optimized proxy over images, surfacing
// build and inference failures as errors. Fans out like classifyE.
func (l *Lab) classifyUnoptE(key, model string, images []*tensor.Tensor) ([]int, error) {
	if p, ok := l.cachedPred(key); ok {
		return p, nil
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return nil, err
	}
	out := make([]int, len(images))
	err = forEach(l.workers(), len(images), func(i int) error {
		o, err := core.UnoptimizedInfer(g, images[i])
		if err != nil {
			return fmt.Errorf("experiments: %s: image %d: %w", key, i, err)
		}
		out[i] = o[0].Argmax()
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.setPred(key, out)
	return out, nil
}

// classifyUnopt is classifyUnoptE for the paper-table generators.
func (l *Lab) classifyUnopt(key, model string, images []*tensor.Tensor) []int {
	p, err := l.classifyUnoptE(key, model, images)
	if err != nil {
		panic(err)
	}
	return p
}

// table is a minimal text-table renderer for paper-style output.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
