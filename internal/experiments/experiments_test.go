package experiments

import (
	"strings"
	"testing"

	"edgeinfer/internal/dataset"
)

// tinyOpts keeps the numeric experiments fast in unit tests.
func tinyOpts() Options {
	return Options{
		BenignPerClass: 2,
		AdvPerClass:    1,
		AdvTypes:       []dataset.Corruption{dataset.GaussianNoise, dataset.Fog},
		Runs:           4,
		EnginesPerSide: 3,
	}
}

func TestTable1RendersBothPlatforms(t *testing.T) {
	out := NewLab(tinyOpts()).RenderTable1()
	for _, want := range []string{"Xavier NX", "Xavier AGX", "384", "512"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2AllModelsAndSizes(t *testing.T) {
	rows := NewLab(tinyOpts()).Table2()
	if len(rows) != 13 {
		t.Fatalf("%d rows, want 13", len(rows))
	}
	for _, r := range rows {
		if r.EngineNXMB <= 0 || r.EngineAGXMB <= 0 {
			t.Errorf("%s: non-positive engine sizes", r.Model)
		}
		if r.Model == "mtcnn" {
			if r.EngineNXMB <= r.ModelMB {
				t.Error("mtcnn engine should exceed its model size")
			}
		}
		if r.Model == "googlenet" {
			if r.EngineNXMB >= r.ModelMB/2 {
				t.Error("googlenet engine should be far below half its model (dead aux heads)")
			}
		}
	}
}

func TestTable3Finding1(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.Table3()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	gain := 0
	for _, r := range rows {
		if r.UnoptError >= r.NXError {
			gain++
		}
		if r.NXError < 10 || r.NXError > 80 {
			t.Errorf("%s TRT error %.1f%% implausible", r.Model, r.NXError)
		}
	}
	if gain < 2 {
		t.Errorf("Finding 1 not reproduced: only %d/3 models improve under TensorRT", gain)
	}
}

func TestTable4SeverityTrend(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.Table4()
	bySev := map[string]map[int]Table4Row{}
	for _, r := range rows {
		if bySev[r.Model] == nil {
			bySev[r.Model] = map[int]Table4Row{}
		}
		bySev[r.Model][r.Severity] = r
	}
	for m, sev := range bySev {
		if sev[5].NXError <= sev[1].NXError {
			t.Errorf("%s: severity 5 error %.1f%% not above severity 1 %.1f%%",
				m, sev[5].NXError, sev[1].NXError)
		}
	}
}

func TestTable5And6MismatchesWithinPaperRegime(t *testing.T) {
	// Mismatch rates are ~0.1-0.8% of predictions, so this test needs a
	// larger sample than tinyOpts to observe any.
	opts := tinyOpts()
	opts.AdvPerClass = 2
	opts.AdvTypes = []dataset.Corruption{dataset.GaussianNoise, dataset.Fog,
		dataset.MotionBlur, dataset.Contrast}
	lab := NewLab(opts)
	any := 0
	for _, r := range lab.Table5() {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m := r.Mismatches[i][j]
				if m < 0 || m > r.Total {
					t.Fatalf("%s mismatch %d out of range", r.Model, m)
				}
				any += m
				// paper: 0.1-0.8% of predictions; allow up to 3%
				if float64(m)/float64(r.Total) > 0.03 {
					t.Errorf("%s: NX%d-AGX%d mismatch rate %.1f%% too high",
						r.Model, i+1, j+1, 100*float64(m)/float64(r.Total))
				}
			}
		}
	}
	if any == 0 {
		t.Error("Finding 2 not reproduced: zero cross-platform mismatches anywhere")
	}
	for _, r := range lab.Table6() {
		if r.M12 < 0 || r.M12 > r.Total {
			t.Fatalf("bad mismatch count %+v", r)
		}
	}
}

func TestTable7Gains(t *testing.T) {
	rows := NewLab(tinyOpts()).Table7()
	for _, r := range rows {
		if r.NXGain < 8 || r.NXGain > 90 {
			t.Errorf("%s NX gain %.1fx outside a plausible band around the paper's 23-27x", r.Model, r.NXGain)
		}
		if r.NXTRT <= r.NXUnopt {
			t.Errorf("%s: TRT not faster than unopt", r.Model)
		}
	}
}

func TestFiguresSaturationCounts(t *testing.T) {
	lab := NewLab(tinyOpts())
	f3 := lab.Figure3()
	if f3[0].Saturation != 28 {
		t.Errorf("Figure 3 NX saturation %d, paper observes 28", f3[0].Saturation)
	}
	if f3[1].Saturation < 32 || f3[1].Saturation > 42 {
		t.Errorf("Figure 3 AGX saturation %d, paper observes 36", f3[1].Saturation)
	}
	f4 := lab.Figure4()
	if f4[0].Saturation != 16 {
		t.Errorf("Figure 4 NX saturation %d, paper observes 16", f4[0].Saturation)
	}
	if f4[1].Saturation < 20 || f4[1].Saturation > 28 {
		t.Errorf("Figure 4 AGX saturation %d, paper observes 24", f4[1].Saturation)
	}
	// Utilization must rise and stay within the paper's 80-86% ceiling.
	for _, fs := range append(f3, f4...) {
		last := fs.Points[len(fs.Points)-1]
		if last.GPUUtilization < 60 || last.GPUUtilization > 87 {
			t.Errorf("%s-%s saturated utilization %.1f%%", fs.Platform, fs.Model, last.GPUUtilization)
		}
	}
}

func TestTable8AnomaliesExist(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.Table8()
	if len(rows) != 13 {
		t.Fatalf("%d rows", len(rows))
	}
	anomalous := 0
	for _, r := range rows {
		if len(r.Matrix.Anomalies()) > 0 {
			anomalous++
		}
	}
	// The paper finds anomalies in 9 of 13 models; require a majority.
	if anomalous < 5 {
		t.Errorf("only %d/13 models show AGX-slower anomalies", anomalous)
	}
}

func TestTable9AnomaliesPersistWithoutProfiler(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.Table9()
	persist := 0
	for _, r := range rows {
		if len(r.Matrix.Anomalies()) > 0 {
			persist++
		}
		// Latency without nvprof must be lower than with it.
	}
	if persist == 0 {
		t.Error("anomalies vanish without the profiler — they should not")
	}
}

func TestTable10MemcpyDissection(t *testing.T) {
	lab := NewLab(tinyOpts())
	for _, r := range lab.Table10() {
		if r.NXIncl.MeanMS <= r.NXExcl.MeanMS {
			t.Errorf("%s: memcpy-included not slower on NX", r.Model)
		}
		if r.AGXIncl.MeanMS <= r.AGXExcl.MeanMS {
			t.Errorf("%s: memcpy-included not slower on AGX", r.Model)
		}
	}
}

func TestTable11HasAGXSlowKernels(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.Table11()
	slower := 0
	for _, r := range rows {
		if r.SlowerOnAGX {
			slower++
		}
	}
	if slower == 0 {
		t.Error("Finding 5 not reproduced: no kernel runs slower on AGX")
	}
}

func TestTable12EngineVariance(t *testing.T) {
	lab := NewLab(tinyOpts())
	varies := 0
	for _, r := range lab.Table12() {
		if r.Varies {
			varies++
		}
	}
	if varies < 3 {
		t.Errorf("only %d/13 models vary across engine builds", varies)
	}
}

func TestTable13CountsDiffer(t *testing.T) {
	lab := NewLab(tinyOpts())
	r := lab.Table13()
	if r.Symbol == "" {
		t.Fatal("no kernel selected")
	}
	if r.Calls[0] == r.Calls[1] && r.Calls[1] == r.Calls[2] {
		t.Errorf("invocation counts identical across engines: %v", r.Calls)
	}
}

func TestTables17And18(t *testing.T) {
	lab := NewLab(tinyOpts())
	for _, r := range []Table17Result{lab.Table17(), lab.Table18()} {
		for _, rep := range r.Reports {
			if rep.ErrorPct < 0 || rep.ErrorPct > 80 {
				t.Errorf("%s: prediction error %.1f%% implausible", rep.Engine, rep.ErrorPct)
			}
		}
		if r.ErrorSpreadPct <= 0 {
			t.Errorf("%s: no prediction-error spread across engines", r.Model)
		}
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	lab := NewLab(tinyOpts())
	renders := map[string]func() string{
		"t1": lab.RenderTable1, "t2": lab.RenderTable2, "t7": lab.RenderTable7,
		"t14": lab.RenderTable14, "t15": lab.RenderTable15, "t16": lab.RenderTable16,
		"f3": lab.RenderFigure3, "f4": lab.RenderFigure4,
	}
	for name, fn := range renders {
		if len(fn()) < 100 {
			t.Errorf("%s render too short", name)
		}
	}
}

func TestPrecisionStudyExtension(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows, err := lab.PrecisionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 3 models x 3 precisions", len(rows))
	}
	byModel := map[string]map[string]PrecisionRow{}
	for _, r := range rows {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]PrecisionRow{}
		}
		byModel[r.Model][r.Precision.String()] = r
	}
	for m, precs := range byModel {
		if precs["fp16"].LatencyMS >= precs["fp32"].LatencyMS {
			t.Errorf("%s: fp16 not faster than fp32", m)
		}
		if precs["int8"].LatencyMS >= precs["fp16"].LatencyMS {
			t.Errorf("%s: int8 not faster than fp16", m)
		}
		if precs["int8"].WeightMB >= precs["fp16"].WeightMB {
			t.Errorf("%s: int8 weights not smaller", m)
		}
		// INT8 with percentile calibration must not collapse accuracy.
		if precs["int8"].ErrorPct > precs["fp16"].ErrorPct+5 {
			t.Errorf("%s: int8 error %.1f%% vs fp16 %.1f%%", m, precs["int8"].ErrorPct, precs["fp16"].ErrorPct)
		}
	}
}

func TestBatchSweepAmortizes(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows, err := lab.BatchSweep("resnet18", []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].PerFrameMS >= rows[0].PerFrameMS {
		t.Fatal("batching should amortize per-frame cost")
	}
	if rows[1].LatencyMS <= rows[0].LatencyMS {
		t.Fatal("batch latency should exceed batch-1 latency")
	}
	if rows[1].SpeedupVsB1 <= 1 {
		t.Fatal("throughput speedup should exceed 1")
	}
}

func TestEnergyStudyNXMoreEfficient(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.EnergyStudy()
	byKey := map[string]EnergyRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Platform] = r
	}
	for _, m := range []string{"tiny-yolov3", "googlenet", "resnet18"} {
		nx, agx := byKey[m+"/NX"], byKey[m+"/AGX"]
		if nx.FPSPerWatt <= agx.FPSPerWatt {
			t.Errorf("%s: NX (10-20W part) should beat AGX on FPS/W: %.2f vs %.2f",
				m, nx.FPSPerWatt, agx.FPSPerWatt)
		}
		if agx.Threads <= nx.Threads {
			t.Errorf("%s: AGX should sustain more threads", m)
		}
	}
}

func TestClockSweepShowsEMCCoupling(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.ClockSweep("pednet")
	var nxBW, agxBW []float64
	for _, r := range rows {
		if r.Platform == "NX" {
			nxBW = append(nxBW, r.DRAMGBs)
		} else {
			agxBW = append(agxBW, r.DRAMGBs)
		}
	}
	for i := 1; i < len(nxBW); i++ {
		if nxBW[i] != nxBW[0] {
			t.Fatal("NX DRAM bandwidth must not follow the GPU clock")
		}
	}
	steps := 0
	for i := 1; i < len(agxBW); i++ {
		if agxBW[i] != agxBW[i-1] {
			steps++
		}
	}
	if steps < 2 {
		t.Fatalf("AGX EMC should step with power modes, saw %d steps", steps)
	}
	// At the paper's pinned clocks AGX must have LESS bandwidth than NX.
	for _, r := range rows {
		if r.Platform == "AGX" && r.ClockMHz == 624 && r.DRAMGBs >= 51.2 {
			t.Fatalf("AGX@624 bandwidth %.1f should be below NX's 51.2", r.DRAMGBs)
		}
	}
	// Latency must fall monotonically with clock on each platform.
	var prev float64 = 1e18
	for _, r := range rows {
		if r.Platform == "NX" {
			if r.LatencyMS >= prev {
				t.Fatal("NX latency not monotone in clock")
			}
			prev = r.LatencyMS
		}
	}
}

func TestDetectionStudy(t *testing.T) {
	lab := NewLab(tinyOpts())
	r := lab.DetectionStudy(10)
	if r.PrecisionAt50 < 60 || r.RecallAt50 < 50 {
		t.Fatalf("detection quality too low: P=%.0f R=%.0f", r.PrecisionAt50, r.RecallAt50)
	}
	if r.PrecisionAt75 > r.PrecisionAt50 {
		t.Fatal("precision cannot improve at a stricter IoU")
	}
	if r.ClassAccuracyPct < 80 {
		t.Fatalf("class accuracy %.0f%%", r.ClassAccuracyPct)
	}
	if r.CoverageCells == 0 {
		t.Fatal("no coverage cells compared")
	}
	if r.CoverageCellsDiffering == 0 {
		t.Fatal("two differently-tuned engines computed identical coverage everywhere")
	}
}

func TestThermalStudy(t *testing.T) {
	lab := NewLab(tinyOpts())
	rows := lab.ThermalStudy()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var nx, agx ThermalRow
	for _, r := range rows {
		if r.Platform == "NX" {
			nx = r
		} else {
			agx = r
		}
	}
	if nx.TimeToThrottleS < 0 {
		t.Fatal("passively cooled NX should throttle in a 35C cabinet")
	}
	if nx.FPSDropPct <= 0 {
		t.Fatal("NX throttling should cost FPS")
	}
	if agx.TimeToThrottleS >= 0 && agx.FPSDropPct > nx.FPSDropPct {
		t.Fatal("fan-cooled AGX should fare better than NX")
	}
	if nx.PeakTempC < 60 || nx.PeakTempC > 110 {
		t.Fatalf("NX peak temp %.0fC implausible", nx.PeakTempC)
	}
}

func TestLatencyRenderersNonEmpty(t *testing.T) {
	lab := NewLab(tinyOpts())
	renders := map[string]func() string{
		"t8": lab.RenderTable8, "t9": lab.RenderTable9, "t10": lab.RenderTable10,
		"t11": lab.RenderTable11, "t12": lab.RenderTable12, "t13": lab.RenderTable13,
		"t17": lab.RenderTable17, "t18": lab.RenderTable18,
		"energy": lab.RenderEnergyStudy,
		"clock":  lab.RenderClockSweep, "thermal": lab.RenderThermalStudy,
	}
	for name, fn := range renders {
		out := fn()
		if len(out) < 80 {
			t.Errorf("%s render too short: %q", name, out)
		}
		if strings.Contains(out, "%!") {
			t.Errorf("%s has formatting errors", name)
		}
	}
	// Error-aware renderers (the extension studies).
	batch, err := lab.RenderBatchSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) < 80 {
		t.Errorf("batch render too short: %q", batch)
	}
	if strings.Contains(batch, "%!") {
		t.Errorf("batch render has formatting errors")
	}
}

func TestNumericRenderersNonEmpty(t *testing.T) {
	lab := NewLab(tinyOpts())
	for name, fn := range map[string]func() string{
		"t3": lab.RenderTable3, "t4": lab.RenderTable4,
		"t5": lab.RenderTable5, "t6": lab.RenderTable6,
		"detection": lab.RenderDetectionStudy,
	} {
		if len(fn()) < 80 {
			t.Errorf("%s render too short", name)
		}
	}
	precision, err := lab.RenderPrecisionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(precision) < 80 {
		t.Errorf("precision render too short")
	}
}
