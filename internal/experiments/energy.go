package experiments

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// Extension experiments: energy efficiency and DVFS. tegrastats exposes
// the power rails the paper collects but does not analyze; these sweeps
// complete that axis and expose the EMC power-mode coupling (DESIGN §4.4)
// as a visible kink in the AGX latency/clock curve.

// EnergyRow is one (model, platform) energy-efficiency point at max
// clocks under saturating concurrency.
type EnergyRow struct {
	Model        string
	Platform     string
	Threads      int
	AggregateFPS float64
	PowerW       float64
	FPSPerWatt   float64
}

// EnergyStudy measures frames-per-watt at the saturation thread count.
func (l *Lab) EnergyStudy() []EnergyRow {
	var out []EnergyRow
	for _, m := range []string{"tiny-yolov3", "googlenet", "resnet18"} {
		for _, p := range []string{"NX", "AGX"} {
			dev := maxDevice(p)
			e := l.engine(m, p, 1)
			load := e.StreamLoad(dev)
			sat := gpusim.SaturationThreads(dev, load)
			util := gpusim.GPUUtilization(dev, load, sat)
			fps := gpusim.ThreadFPS(dev, load, sat)
			power := dev.PowerW(util)
			out = append(out, EnergyRow{
				Model: m, Platform: p, Threads: sat,
				AggregateFPS: fps, PowerW: power, FPSPerWatt: fps / power,
			})
		}
	}
	return out
}

// RenderEnergyStudy formats the energy extension table.
func (l *Lab) RenderEnergyStudy() string {
	t := &table{
		title:  "Extension: energy efficiency at saturating concurrency (max clocks)",
		header: []string{"NN Model", "Platform", "Threads", "FPS/thread", "Power (W)", "FPS/W"},
	}
	for _, r := range l.EnergyStudy() {
		t.add(r.Model, r.Platform, fmt.Sprintf("%d", r.Threads),
			f1(r.AggregateFPS), f1(r.PowerW), f2(r.FPSPerWatt))
	}
	return t.String()
}

// ClockRow is one point of the DVFS sweep.
type ClockRow struct {
	Platform   string
	ClockMHz   float64
	LatencyMS  float64
	DRAMGBs    float64
	PowerWBusy float64
}

// ClockSweep times one engine across GPU clock settings on both
// platforms. On AGX the EMC follows the power mode, so its latency curve
// has a visible discontinuity where the memory clock steps down — the
// root cause of the paper's pinned-clock anomalies made directly visible.
func (l *Lab) ClockSweep(model string) []ClockRow {
	var out []ClockRow
	for _, p := range []string{"NX", "AGX"} {
		spec := platformSpec(p)
		e := l.engine(model, p, 1)
		for _, clk := range []float64{400, 599, 624, 800, 900, 1100, 1377} {
			if clk > gpusim.PaperMaxClock(spec) {
				continue
			}
			dev := gpusim.NewDevice(spec, clk)
			lat := e.Run(core.RunConfig{Device: dev}).LatencySec
			out = append(out, ClockRow{
				Platform: p, ClockMHz: clk,
				LatencyMS:  lat * 1e3,
				DRAMGBs:    dev.DRAMBandwidth() / 1e9,
				PowerWBusy: dev.PowerW(1),
			})
		}
	}
	return out
}

// RenderClockSweep formats the DVFS extension table.
func (l *Lab) RenderClockSweep() string {
	t := &table{
		title:  "Extension: DVFS sweep (pednet kernels, no memcpy) — note the AGX EMC steps",
		header: []string{"Platform", "GPU MHz", "Latency (ms)", "DRAM GB/s", "Power busy (W)"},
	}
	for _, r := range l.ClockSweep("pednet") {
		t.add(r.Platform, fmt.Sprintf("%.0f", r.ClockMHz), f2(r.LatencyMS), f1(r.DRAMGBs), f1(r.PowerWBusy))
	}
	return t.String()
}
