package experiments

import (
	"fmt"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/latpred"
	"edgeinfer/internal/models"
	"edgeinfer/internal/perfmodel"
)

// Extension experiment (beyond the paper): the learned latency predictor
// as a rival to §VI-B's analytic BSP model. The paper shows the BSP
// methodology — calibrate per-kernel lambdas on one platform, predict
// another — is brittle under the optimization engine. MAPLE-Edge's
// answer is to learn the latency surface from measurements instead: the
// regressor folds device geometry (peak rates, bandwidth, wave and L2
// terms) into its features, so a model trained purely on one device's
// timing-cache entries can price launches on a device it has never seen.
// This study scores both predictors on the same engines, the same target
// devices, and the same covered launch subset, across three transfer
// directions: NX->AGX, AGX->NX, and a held-out clock step on NX.

// TransferRow is one transfer direction's learned-vs-analytic summary,
// averaged over the eval engines (three builds each of inception-v4 and
// mobilenet-v1, the §VI-B models).
type TransferRow struct {
	Direction string // e.g. "NX@599 -> AGX@624"
	TrainRows int    // timing-cache rows the learned model fitted on
	// CoveragePct is the share of eval-engine kernel time the learned
	// model prices (tuned conv/GEMM families; the remainder — pool,
	// elementwise, softmax launches — has no tactic menu and is excluded
	// from both predictors for a like-for-like error).
	CoveragePct    float64
	LearnedErrPct  float64 // mean |pred-meas|/meas over eval engines
	AnalyticErrPct float64 // same for the lambda-calibrated BSP model
}

// latPredEvalModels are the §VI-B models (Tables XVII/XVIII).
var latPredEvalModels = []string{"inceptionv4", "mobilenetv1"}

// LatPredTransfer runs the three transfer directions.
func (l *Lab) LatPredTransfer() ([]TransferRow, error) {
	nxLat := latencyDevice("NX")
	agxLat := latencyDevice("AGX")
	nxMax := maxDevice("NX")
	dirs := []struct {
		src, dst *gpusim.Device
		buildOn  string // platform the eval engines are built on
	}{
		{src: nxLat, dst: agxLat, buildOn: "NX"},
		{src: agxLat, dst: nxLat, buildOn: "AGX"},
		// Held-out clock: train at the paper's pinned latency clock,
		// predict the same silicon at its boost clock.
		{src: nxLat, dst: nxMax, buildOn: "NX"},
	}
	var out []TransferRow
	for _, dir := range dirs {
		row, err := l.transferRow(dir.src, dir.dst, dir.buildOn)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// transferRow trains a predictor purely on src-keyed cache entries and
// scores it against the BSP model on dst.
func (l *Lab) transferRow(src, dst *gpusim.Device, buildOn string) (TransferRow, error) {
	row := TransferRow{
		Direction: fmt.Sprintf("%s -> %s@%.0f", latpred.DeviceKey(src), dst.Spec.Short(), dst.ClockMHz),
	}
	cache, err := seedZooCache(src)
	if err != nil {
		return row, err
	}
	opts := latpred.DefaultTrainOptions()
	opts.Devices = []string{src.Spec.Short()}
	model, stats, err := latpred.Train(cache, opts)
	if err != nil {
		return row, err
	}
	row.TrainRows = stats.Rows

	var sumLearned, sumAnalytic, sumCoverage float64
	n := 0
	for _, name := range latPredEvalModels {
		for build := 1; build <= 3; build++ {
			e := l.engine(name, buildOn, build)
			cal := perfmodel.Calibrate(e, src)
			var covered, total, learned, analytic float64
			for _, lch := range e.Launches {
				t := lch.Spec.TimeSec(dst)
				total += t
				p, ok := model.PredictSec(dst, lch.Spec)
				if !ok {
					continue
				}
				covered += t
				learned += p
				raw := perfmodel.RawPredictSec(perfmodel.CountersFor(lch, dst), dst)
				lambda := cal.Lambda[lch.Symbol]
				if lambda <= 0 {
					lambda = 1
				}
				analytic += raw / lambda
			}
			if covered <= 0 || total <= 0 {
				return row, fmt.Errorf("experiments: %s build %d: predictor covered no kernel time", name, build)
			}
			sumLearned += perfmodel.ErrorPct(learned, covered)
			sumAnalytic += perfmodel.ErrorPct(analytic, covered)
			sumCoverage += 100 * covered / total
			n++
		}
	}
	row.LearnedErrPct = sumLearned / float64(n)
	row.AnalyticErrPct = sumAnalytic / float64(n)
	row.CoveragePct = sumCoverage / float64(n)
	return row, nil
}

// seedZooCache builds the whole zoo once on the source device, banking
// every tactic measurement — the learned model's entire knowledge of the
// world. Nothing from the target device ever enters it.
func seedZooCache(src *gpusim.Device) (*core.TimingCache, error) {
	cache := core.NewTimingCache()
	for _, name := range models.List() {
		cfg := core.DefaultConfig(platformSpec(src.Spec.Short()), 1)
		cfg.ClockMHz = src.ClockMHz
		cfg.TimingCache = cache
		if _, err := core.Build(models.MustBuild(name), cfg); err != nil {
			return nil, err
		}
	}
	return cache, nil
}

// RenderLatPredTransfer prints the study in the repo's table style.
func (l *Lab) RenderLatPredTransfer() (string, error) {
	rows, err := l.LatPredTransfer()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension: learned latency predictor on unseen devices (vs analytic BSP model)\n")
	b.WriteString("Direction                  TrainRows  Coverage  LearnedErr  AnalyticErr\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-26s %9d  %7.1f%%  %9.2f%%  %10.2f%%\n",
			r.Direction, r.TrainRows, r.CoveragePct, r.LearnedErrPct, r.AnalyticErrPct))
	}
	b.WriteString("Errors are means over 3 builds each of inception-v4 and mobilenet-v1,\n")
	b.WriteString("restricted to the launch subset the learned model prices (same subset for both).\n")
	return b.String(), nil
}
