package experiments

import (
	"strings"
	"testing"
)

// TestLatPredTransferStudy gates the §VI-B extension's acceptance
// property: on at least one transfer direction the learned predictor's
// error must not exceed the analytic BSP model's, and every direction
// must produce sane, well-covered numbers.
func TestLatPredTransferStudy(t *testing.T) {
	lab := NewLab(Default())
	rows, err := lab.LatPredTransfer()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d transfer directions, want 3", len(rows))
	}
	learnedWins := 0
	for _, r := range rows {
		if r.TrainRows == 0 {
			t.Errorf("%s: trained on zero rows", r.Direction)
		}
		if r.CoveragePct < 50 {
			t.Errorf("%s: learned model covers only %.1f%% of kernel time", r.Direction, r.CoveragePct)
		}
		if r.LearnedErrPct < 0 || r.LearnedErrPct > 100 {
			t.Errorf("%s: implausible learned error %.2f%%", r.Direction, r.LearnedErrPct)
		}
		if r.LearnedErrPct <= r.AnalyticErrPct {
			learnedWins++
		}
		t.Logf("%s: rows=%d coverage=%.1f%% learned=%.2f%% analytic=%.2f%%",
			r.Direction, r.TrainRows, r.CoveragePct, r.LearnedErrPct, r.AnalyticErrPct)
	}
	if learnedWins == 0 {
		t.Fatal("learned predictor beat the analytic model on no transfer direction")
	}

	out, err := lab.RenderLatPredTransfer()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"unseen devices", "Direction", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered study missing %q:\n%s", want, out)
		}
	}
}
