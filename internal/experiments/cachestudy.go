package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"

	"edgeinfer/internal/core"
	"edgeinfer/internal/models"
)

// Extension experiment (beyond the paper): the timing cache. The paper's
// §VI-A answer to build-to-build non-determinism is operational — build
// once, ship the engine. The timing cache turns it into a mechanism:
// cold builds record their tactic timings; warm rebuilds replay them,
// skipping re-timing entirely and producing byte-identical plans. This
// study measures both halves per model: that cold builds still diverge
// (Finding 6 is preserved) and that warm rebuilds are free and canonical.

// CacheStudyRow is one model's cold-vs-warm comparison on NX.
type CacheStudyRow struct {
	Model        string
	ColdCostSec  float64 // simulated tactic-timing cost of the cold build
	WarmCostSec  float64 // same for a warm rebuild (0 when fully cached)
	TacticsTimed int     // measurements the cold build performed
	CacheEntries int     // distinct (device, variant, dims) entries recorded
	// ColdDiverges: two cold builds under different build ids chose at
	// least one different tactic (the paper's non-determinism).
	ColdDiverges bool
	// WarmByteIdentical: two warm rebuilds under different build ids
	// serialized to identical plan bytes.
	WarmByteIdentical bool
}

// cacheStudyModels spans the size range: small detector, mid classifier,
// large classifier.
var cacheStudyModels = []string{"resnet18", "googlenet", "vgg16"}

// CacheStudy runs the cold/warm comparison for each model.
func (l *Lab) CacheStudy() ([]CacheStudyRow, error) {
	var out []CacheStudyRow
	for _, m := range cacheStudyModels {
		g, err := models.Build(m)
		if err != nil {
			return nil, err
		}
		cache := core.NewTimingCache()
		cold := core.DefaultConfig(platformSpec("NX"), 1)
		cold.TimingCache = cache
		ce, err := core.Build(g, cold)
		if err != nil {
			return nil, err
		}
		// Cold divergence check against an independent cold build.
		cold2 := core.DefaultConfig(platformSpec("NX"), 2)
		cold2.TimingCache = core.NewTimingCache()
		ce2, err := core.Build(g, cold2)
		if err != nil {
			return nil, err
		}
		warm := func(build int) (*core.Engine, error) {
			cfg := core.DefaultConfig(platformSpec("NX"), build)
			cfg.TimingCache = cache
			cfg.CanonicalWarmID = true
			return core.Build(g, cfg)
		}
		w1, err := warm(7)
		if err != nil {
			return nil, err
		}
		w2, err := warm(9)
		if err != nil {
			return nil, err
		}
		var b1, b2 bytes.Buffer
		if err := w1.Save(&b1); err != nil {
			return nil, err
		}
		if err := w2.Save(&b2); err != nil {
			return nil, err
		}
		out = append(out, CacheStudyRow{
			Model:             m,
			ColdCostSec:       ce.Report.TuneCostSec,
			WarmCostSec:       w1.Report.TuneCostSec,
			TacticsTimed:      ce.Report.TacticsTimed,
			CacheEntries:      cache.Len(),
			ColdDiverges:      !reflect.DeepEqual(ce.Choices, ce2.Choices),
			WarmByteIdentical: w1.Report.WarmBuild && w2.Report.WarmBuild && bytes.Equal(b1.Bytes(), b2.Bytes()),
		})
	}
	return out, nil
}

// RenderCacheStudy prints the study in the repo's table style.
func (l *Lab) RenderCacheStudy() (string, error) {
	rows, err := l.CacheStudy()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension: timing-cache cold vs warm builds (NX, FP16)\n")
	b.WriteString("Model        ColdCost(ms)  WarmCost(ms)  Tactics  Entries  ColdDiverges  WarmByteIdentical\n")
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-12s %12.2f  %12.2f  %7d  %7d  %12v  %17v\n",
			r.Model, r.ColdCostSec*1e3, r.WarmCostSec*1e3,
			r.TacticsTimed, r.CacheEntries, r.ColdDiverges, r.WarmByteIdentical))
	}
	return b.String(), nil
}
