package experiments

import (
	"errors"
	"reflect"
	"testing"

	"edgeinfer/internal/dataset"
)

// TestWorkerCountInvariance is the determinism gate for the parallel lab:
// every table must come out identical whether the per-image and per-model
// loops run serially or fanned out. Outputs are placed by index and kernel
// execution is bit-identical under any worker count, so this is exact
// equality, not tolerance.
func TestWorkerCountInvariance(t *testing.T) {
	// Smallest configuration that still walks both fan-out layers
	// (fanModels + the per-image classify loops) end to end; the
	// kernel-level bit-identity matrix lives in internal/kernels.
	opts := Options{
		BenignPerClass: 1,
		AdvPerClass:    1,
		AdvTypes:       []dataset.Corruption{dataset.GaussianNoise},
		Runs:           2,
		EnginesPerSide: 1,
	}
	serial := opts
	serial.Workers = 1
	fanned := opts
	fanned.Workers = 4

	s := NewLab(serial)
	f := NewLab(fanned)

	if got, want := s.Table3(), f.Table3(); !reflect.DeepEqual(got, want) {
		t.Errorf("Table3 differs between 1 and 4 workers:\n%+v\nvs\n%+v", got, want)
	}
	if got, want := s.Table5(), f.Table5(); !reflect.DeepEqual(got, want) {
		t.Errorf("Table5 differs between 1 and 4 workers:\n%+v\nvs\n%+v", got, want)
	}
}

func TestWorkerKnobs(t *testing.T) {
	l := NewLab(tinyOpts())
	if l.workers() < 1 {
		t.Fatalf("default workers %d < 1", l.workers())
	}
	l.Opts.Workers = 3
	if l.workers() != 3 {
		t.Fatalf("workers() = %d, want 3", l.workers())
	}
	if l.modelWorkers() != 3 {
		t.Fatalf("modelWorkers() = %d, want 3", l.modelWorkers())
	}
	// Cold builds sharing a timing cache are order-sensitive, so model
	// fan-out must degrade to serial when a cache directory is set.
	l.Opts.TimingCacheDir = t.TempDir()
	if l.modelWorkers() != 1 {
		t.Fatalf("modelWorkers() with timing cache = %d, want 1", l.modelWorkers())
	}
	if l.workers() != 3 {
		t.Fatalf("per-image workers with timing cache = %d, want 3", l.workers())
	}
}

func TestForEachSemantics(t *testing.T) {
	// Indices are covered exactly once under any width.
	for _, width := range []int{1, 4, 16} {
		hits := make([]int, 37)
		if err := forEach(width, len(hits), func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("width %d: index %d ran %d times", width, i, n)
			}
		}
	}
	// An error from any index surfaces.
	sentinel := errors.New("boom")
	if err := forEach(4, 9, func(i int) error {
		if i == 5 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("forEach swallowed the error: %v", err)
	}
}
