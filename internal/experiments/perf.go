package experiments

import (
	"fmt"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
)

// Table7Row is one row of Table VII: classification throughput.
type Table7Row struct {
	Model                            string
	NXUnopt, NXTRT, AGXUnopt, AGXTRT float64
	NXGain, AGXGain                  float64
}

// Table7 reproduces Table VII: FPS for TensorRT-optimized vs
// un-optimized engines on both platforms at max clocks.
func (l *Lab) Table7() []Table7Row {
	var out []Table7Row
	for _, m := range classifierModels {
		g := mustModel(m)
		row := Table7Row{Model: m}
		for _, p := range []string{"NX", "AGX"} {
			dev := maxDevice(p)
			e := l.engine(m, p, 1)
			load := e.StreamLoad(dev)
			trt := 1 / (load.PerFrameGPUSec + load.PerFrameHostSec)
			unopt := 1 / core.UnoptimizedRun(g, dev)
			if p == "NX" {
				row.NXTRT, row.NXUnopt, row.NXGain = trt, unopt, trt/unopt
			} else {
				row.AGXTRT, row.AGXUnopt, row.AGXGain = trt, unopt, trt/unopt
			}
		}
		out = append(out, row)
	}
	return out
}

// RenderTable7 formats Table VII.
func (l *Lab) RenderTable7() string {
	t := &table{
		title:  "Table VII: FPS for TensorRT optimized vs un-optimized engines",
		header: []string{"NN Model", "NX-Unopt", "NX-TRT", "AGX-Unopt", "AGX-TRT", "NX gain", "AGX gain"},
	}
	for _, r := range l.Table7() {
		t.add(r.Model, f2(r.NXUnopt), f1(r.NXTRT), f2(r.AGXUnopt), f1(r.AGXTRT),
			f1(r.NXGain)+"x", f1(r.AGXGain)+"x")
	}
	return t.String()
}

// FigureSeries is one platform's curve of Figures 3/4.
type FigureSeries struct {
	Platform   string
	Model      string
	Points     []gpusim.ConcurrencyPoint
	Saturation int
}

// figure sweeps the concurrency model for one CNN on both platforms.
func (l *Lab) figure(model string) []FigureSeries {
	var out []FigureSeries
	for _, p := range []string{"NX", "AGX"} {
		dev := maxDevice(p)
		e := l.engine(model, p, 1)
		load := e.StreamLoad(dev)
		out = append(out, FigureSeries{
			Platform:   p,
			Model:      model,
			Points:     gpusim.ConcurrencySweep(dev, load),
			Saturation: gpusim.SaturationThreads(dev, load),
		})
	}
	return out
}

// Figure3 reproduces Figure 3: Tiny-YOLOv3 FPS and GPU utilization vs
// thread count on NX and AGX.
func (l *Lab) Figure3() []FigureSeries { return l.figure("tiny-yolov3") }

// Figure4 reproduces Figure 4 for GoogLeNet.
func (l *Lab) Figure4() []FigureSeries { return l.figure("googlenet") }

// RenderFigure renders a figure's series as aligned columns (the text
// form of the paper's plots).
func RenderFigure(title string, series []FigureSeries) string {
	s := title + "\n"
	for _, fs := range series {
		s += fmt.Sprintf("  %s-%s (saturates at %d threads):\n", fs.Platform, fs.Model, fs.Saturation)
		s += fmt.Sprintf("    %8s  %14s  %10s\n", "threads", "FPS/thread", "GPU util%")
		for _, p := range fs.Points {
			s += fmt.Sprintf("    %8d  %14.1f  %10.1f\n", p.Threads, p.FPSPerThread, p.GPUUtilization)
		}
	}
	return s
}

// RenderFigure3 formats Figure 3.
func (l *Lab) RenderFigure3() string {
	return RenderFigure("Figure 3: Tiny-YOLOv3 concurrency sweep", l.Figure3())
}

// RenderFigure4 formats Figure 4.
func (l *Lab) RenderFigure4() string {
	return RenderFigure("Figure 4: GoogLeNet concurrency sweep", l.Figure4())
}

// FigureCSV renders a figure's series as CSV (threads, fps, util per
// platform) for external plotting.
func FigureCSV(series []FigureSeries) string {
	s := "platform,model,threads,fps_per_thread,gpu_util_pct\n"
	for _, fs := range series {
		for _, p := range fs.Points {
			s += fmt.Sprintf("%s,%s,%d,%.2f,%.2f\n", fs.Platform, fs.Model, p.Threads, p.FPSPerThread, p.GPUUtilization)
		}
	}
	return s
}
