package frameworks

import (
	"encoding/json"
	"fmt"

	"edgeinfer/internal/graph"
)

// TensorFlow-style serialization: a graph-def of typed nodes with
// attribute maps, JSON-encoded (standing in for the protobuf wire
// format), plus the shared binary weight payload.

type tfGraphDef struct {
	Name       string
	Task       string
	InputShape [4]int
	Outputs    []string
	Node       []tfNode
}

type tfNode struct {
	Name  string
	Op    string
	Input []string
	Attr  map[string]float64 `json:",omitempty"`
}

var tfOps = map[graph.OpType]string{
	graph.OpConv: "Conv2D", graph.OpMaxPool: "MaxPool", graph.OpAvgPool: "AvgPool",
	graph.OpGlobalAvgPool: "Mean", graph.OpReLU: "Relu", graph.OpLeakyReLU: "LeakyRelu",
	graph.OpSigmoid: "Sigmoid", graph.OpFC: "MatMul", graph.OpBatchNorm: "FusedBatchNorm",
	graph.OpLRN: "LRN", graph.OpSoftmax: "Softmax", graph.OpAdd: "AddN",
	graph.OpConcat: "ConcatV2", graph.OpUpsample: "ResizeNearestNeighbor",
	graph.OpDropout: "Identity", graph.OpScale: "Mul", graph.OpFlatten: "Reshape",
}

var tfOpsBack = func() map[string]graph.OpType {
	m := map[string]graph.OpType{}
	for k, v := range tfOps {
		m[v] = k
	}
	return m
}()

func exportTF(g *graph.Graph) (Model, error) {
	h, rs := toRecs(g)
	def := tfGraphDef{Name: h.Name, Task: h.Task, InputShape: h.InputShape, Outputs: h.Outputs}
	for _, r := range rs {
		op, ok := tfOps[r.Op]
		if !ok {
			return Model{}, fmt.Errorf("frameworks: tensorflow cannot express op %v", r.Op)
		}
		n := tfNode{Name: r.Name, Op: op, Input: r.Inputs, Attr: map[string]float64{}}
		switch r.Op {
		case graph.OpConv:
			n.Attr["num_output"] = float64(r.Conv.OutC)
			n.Attr["ksize"] = float64(r.Conv.Kernel)
			n.Attr["strides"] = float64(r.Conv.Stride)
			n.Attr["padding"] = float64(r.Conv.Pad)
			n.Attr["groups"] = float64(maxInt(r.Conv.Groups, 1))
		case graph.OpMaxPool, graph.OpAvgPool:
			n.Attr["ksize"] = float64(r.Pool.Kernel)
			n.Attr["strides"] = float64(r.Pool.Stride)
			n.Attr["padding"] = float64(r.Pool.Pad)
		case graph.OpFC:
			n.Attr["units"] = float64(r.OutUnits)
		case graph.OpLeakyReLU:
			n.Attr["alpha"] = float64(r.Alpha)
		case graph.OpLRN:
			n.Attr["depth_radius"] = float64(r.LRNSize)
			n.Attr["alpha"] = float64(r.Alpha)
			n.Attr["beta"] = float64(r.LRNBeta)
			n.Attr["bias"] = float64(r.LRNK)
		}
		def.Node = append(def.Node, n)
	}
	arch, err := json.MarshalIndent(def, "", " ")
	if err != nil {
		return Model{}, err
	}
	weights, err := encodeWeights(g)
	if err != nil {
		return Model{}, err
	}
	return Model{Format: TensorFlow, Arch: arch, Weights: weights}, nil
}

func importTF(m Model) (*graph.Graph, error) {
	var def tfGraphDef
	if err := json.Unmarshal(m.Arch, &def); err != nil {
		return nil, fmt.Errorf("frameworks: bad tensorflow graphdef: %w", err)
	}
	h := header{Name: def.Name, Task: def.Task, InputShape: def.InputShape, Outputs: def.Outputs}
	var rs []rec
	for _, n := range def.Node {
		op, ok := tfOpsBack[n.Op]
		if !ok {
			return nil, fmt.Errorf("frameworks: unknown tensorflow op %q", n.Op)
		}
		r := rec{Name: n.Name, Op: op, Inputs: n.Input}
		a := func(k string) float64 { return n.Attr[k] }
		switch op {
		case graph.OpConv:
			r.Conv.OutC = int(a("num_output"))
			r.Conv.Kernel = int(a("ksize"))
			r.Conv.Stride = int(a("strides"))
			r.Conv.Pad = int(a("padding"))
			r.Conv.Groups = int(a("groups"))
		case graph.OpMaxPool, graph.OpAvgPool:
			r.Pool.Kernel = int(a("ksize"))
			r.Pool.Stride = int(a("strides"))
			r.Pool.Pad = int(a("padding"))
		case graph.OpFC:
			r.OutUnits = int(a("units"))
		case graph.OpLeakyReLU:
			r.Alpha = float32(a("alpha"))
		case graph.OpLRN:
			r.LRNSize = int(a("depth_radius"))
			r.Alpha = float32(a("alpha"))
			r.LRNBeta = float32(a("beta"))
			r.LRNK = float32(a("bias"))
		}
		rs = append(rs, r)
	}
	g, err := fromRecs(h, rs)
	if err != nil {
		return nil, err
	}
	if err := decodeWeights(g, m.Weights); err != nil {
		return nil, err
	}
	return g, nil
}
