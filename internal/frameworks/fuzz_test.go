package frameworks

import (
	"testing"

	"edgeinfer/internal/models"
)

// FuzzImportCaffe mutates prototxt text: the parser must error or
// produce a finalized graph, never panic.
func FuzzImportCaffe(f *testing.F) {
	m, err := Export(models.MustBuild("alexnet"), Caffe)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(m.Arch))
	f.Add("layer {")
	f.Add(`layer { name: "x" type: "Convolution" bottom: "data" top: "x" }`)
	f.Add("")
	f.Fuzz(func(t *testing.T, arch string) {
		if len(arch) > 1<<20 {
			t.Skip()
		}
		g, err := Import(Model{Format: Caffe, Arch: []byte(arch)})
		if err == nil && !g.Finalized() {
			t.Fatal("unfinalized graph returned without error")
		}
	})
}

// FuzzImportDarknet mutates cfg text with the same contract.
func FuzzImportDarknet(f *testing.F) {
	m, err := Export(models.MustBuild("tiny-yolov3"), Darknet)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(m.Arch))
	f.Add("[net]\nbatch=1\n[convolutional]\nfilters=8\nsize=3\nstride=1\npad=1")
	f.Add("[route]\nlayers=-5")
	f.Fuzz(func(t *testing.T, arch string) {
		if len(arch) > 1<<20 {
			t.Skip()
		}
		g, err := Import(Model{Format: Darknet, Arch: []byte(arch)})
		if err == nil && !g.Finalized() {
			t.Fatal("unfinalized graph returned without error")
		}
	})
}
