package frameworks

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"edgeinfer/internal/graph"
	"edgeinfer/internal/tensor"
)

// rec is the framework-neutral layer record each serializer maps to its
// own syntax.
type rec struct {
	Name     string
	Op       graph.OpType
	Inputs   []string
	Conv     tensor.ConvParams `json:",omitempty"`
	Pool     tensor.PoolParams `json:",omitempty"`
	OutUnits int               `json:",omitempty"`
	Alpha    float32           `json:",omitempty"`
	LRNSize  int               `json:",omitempty"`
	LRNBeta  float32           `json:",omitempty"`
	LRNK     float32           `json:",omitempty"`
}

// header carries graph-level metadata all formats need.
type header struct {
	Name       string
	Task       string
	InputShape [4]int
	Outputs    []string
}

func toRecs(g *graph.Graph) (header, []rec) {
	h := header{Name: g.Name, Task: g.Task, InputShape: g.InputShape, Outputs: g.Outputs}
	var rs []rec
	for _, l := range g.Layers {
		if l.Op == graph.OpInput {
			continue
		}
		rs = append(rs, rec{
			Name: l.Name, Op: l.Op, Inputs: l.Inputs, Conv: l.Conv, Pool: l.Pool,
			OutUnits: l.OutUnits, Alpha: l.Alpha, LRNSize: l.LRNSize,
			LRNBeta: l.LRNBeta, LRNK: l.LRNK,
		})
	}
	return h, rs
}

func fromRecs(h header, rs []rec) (*graph.Graph, error) {
	for i := range h.InputShape {
		if h.InputShape[i] < 1 {
			return nil, fmt.Errorf("frameworks: invalid input shape %v", h.InputShape)
		}
	}
	if h.Name == "" {
		h.Name = "imported"
	}
	g := graph.New(h.Name, h.InputShape)
	g.Task = h.Task
	seen := map[string]bool{"data": true}
	for _, r := range rs {
		if r.Name == "" {
			return nil, fmt.Errorf("frameworks: layer with no name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("frameworks: duplicate layer %q", r.Name)
		}
		if len(r.Inputs) == 0 {
			return nil, fmt.Errorf("frameworks: layer %q has no inputs", r.Name)
		}
		for _, in := range r.Inputs {
			if !seen[in] {
				return nil, fmt.Errorf("frameworks: layer %q references unknown input %q", r.Name, in)
			}
		}
		err := g.AddLayer(&graph.Layer{
			Name: r.Name, Op: r.Op, Inputs: r.Inputs, Conv: r.Conv, Pool: r.Pool,
			OutUnits: r.OutUnits, Alpha: r.Alpha, LRNSize: r.LRNSize,
			LRNBeta: r.LRNBeta, LRNK: r.LRNK,
		})
		if err != nil {
			return nil, fmt.Errorf("frameworks: layer %q: %w", r.Name, err)
		}
		seen[r.Name] = true
	}
	g.Outputs = h.Outputs
	return g, nil
}

// weightEntry indexes one tensor in the binary weight payload.
type weightEntry struct {
	Layer string
	Key   string
	Shape [4]int
}

// encodeWeights serializes all materialized weights: a JSON index
// followed by raw little-endian float32 data.
func encodeWeights(g *graph.Graph) ([]byte, error) {
	var idx []weightEntry
	var blob bytes.Buffer
	for _, l := range g.Layers {
		for key, t := range l.Weights {
			if t == nil {
				continue
			}
			idx = append(idx, weightEntry{Layer: l.Name, Key: key, Shape: t.Shape()})
			if err := binary.Write(&blob, binary.LittleEndian, t.Data); err != nil {
				return nil, err
			}
		}
	}
	ib, err := json.Marshal(idx)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := binary.Write(&out, binary.LittleEndian, uint32(len(ib))); err != nil {
		return nil, err
	}
	out.Write(ib)
	out.Write(blob.Bytes())
	return out.Bytes(), nil
}

// decodeWeights attaches a weight payload produced by encodeWeights.
func decodeWeights(g *graph.Graph, payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	if len(payload) < 4 {
		return fmt.Errorf("frameworks: truncated weight payload")
	}
	ilen := binary.LittleEndian.Uint32(payload)
	if int(4+ilen) > len(payload) {
		return fmt.Errorf("frameworks: corrupt weight index")
	}
	var idx []weightEntry
	if err := json.Unmarshal(payload[4:4+ilen], &idx); err != nil {
		return err
	}
	r := bytes.NewReader(payload[4+ilen:])
	for _, e := range idx {
		l := g.Layer(e.Layer)
		if l == nil {
			return fmt.Errorf("frameworks: weights for unknown layer %q", e.Layer)
		}
		elems := int64(1)
		for _, d := range e.Shape {
			if d < 1 {
				return fmt.Errorf("frameworks: weight shape %v invalid", e.Shape)
			}
			elems *= int64(d)
		}
		if elems*4 > int64(len(payload)) {
			return fmt.Errorf("frameworks: weight shape %v exceeds payload", e.Shape)
		}
		t := tensor.New(e.Shape[0], e.Shape[1], e.Shape[2], e.Shape[3])
		if err := binary.Read(r, binary.LittleEndian, t.Data); err != nil {
			return fmt.Errorf("frameworks: weight data for %s/%s: %w", e.Layer, e.Key, err)
		}
		l.Weights[e.Key] = t
	}
	return nil
}
