package frameworks

import (
	"testing"

	"edgeinfer/internal/dataset"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// sameStructure compares two finalized graphs layer by layer.
func sameStructure(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("layer count %d vs %d", len(a.Layers), len(b.Layers))
	}
	for i, la := range a.Layers {
		lb := b.Layers[i]
		if la.Name != lb.Name || la.Op != lb.Op {
			t.Fatalf("layer %d: %s(%v) vs %s(%v)", i, la.Name, la.Op, lb.Name, lb.Op)
		}
		if la.OutShape != lb.OutShape {
			t.Fatalf("layer %s shape %v vs %v", la.Name, la.OutShape, lb.OutShape)
		}
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("outputs %v vs %v", a.Outputs, b.Outputs)
	}
}

func TestRoundTripAllFormatsAllModels(t *testing.T) {
	formats := []Format{Caffe, TensorFlow, Darknet, PyTorch}
	for _, name := range models.List() {
		g := models.MustBuild(name)
		for _, f := range formats {
			m, err := Export(g, f)
			if err != nil {
				t.Errorf("%s -> %s: export: %v", name, f, err)
				continue
			}
			back, err := Import(m)
			if err != nil {
				t.Errorf("%s -> %s: import: %v", name, f, err)
				continue
			}
			sameStructure(t, g, back)
			if back.TotalParams() != g.TotalParams() {
				t.Errorf("%s -> %s: params %d vs %d", name, f, back.TotalParams(), g.TotalParams())
			}
		}
	}
}

func TestNativeFormat(t *testing.T) {
	cases := map[string]Format{
		"alexnet": Caffe, "tiny-yolov3": Darknet,
		"mobilenetv1": TensorFlow, "fcn-resnet18-cityscapes": PyTorch,
	}
	for name, want := range cases {
		g := models.MustBuild(name)
		if got := Native(g); got != want {
			t.Errorf("%s native format %s, want %s", name, got, want)
		}
	}
}

func TestWeightsSurviveRoundTrip(t *testing.T) {
	g, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{Caffe, TensorFlow, Darknet, PyTorch} {
		m, err := Export(g, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(m.Weights) == 0 {
			t.Fatalf("%s: no weights serialized", f)
		}
		back, err := Import(m)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// Numeric equivalence on a real image.
		img := dataset.Benign(dataset.BenignConfig{Seed: "rt", Classes: 2, PerClass: 1, NoiseSigma: 1})[0].Image
		o1, err := g.Execute(img)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := back.Execute(img)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for i := range o1[0].Data {
			if o1[0].Data[i] != o2[0].Data[i] {
				t.Fatalf("%s: outputs differ after round trip", f)
			}
		}
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	for _, f := range []Format{Caffe, TensorFlow, Darknet, PyTorch} {
		if _, err := Import(Model{Format: f, Arch: []byte("{broken")}); err == nil {
			// caffe/darknet text parsers may tolerate noise but must fail
			// to finalize a usable graph
			t.Errorf("%s: garbage arch accepted", f)
		}
	}
	if _, err := Import(Model{Format: "onnx"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Export(models.MustBuild("alexnet"), "onnx"); err == nil {
		t.Fatal("unknown export format accepted")
	}
}

func TestCaffeProtoTxtLooksRight(t *testing.T) {
	g := models.MustBuild("alexnet")
	m, err := Export(g, Caffe)
	if err != nil {
		t.Fatal(err)
	}
	txt := string(m.Arch)
	for _, want := range []string{`type: "Convolution"`, `type: "LRN"`, "num_output: 96", "group: 2"} {
		if !contains(txt, want) {
			t.Errorf("prototxt missing %q", want)
		}
	}
}

func TestDarknetCfgLooksRight(t *testing.T) {
	g := models.MustBuild("tiny-yolov3")
	m, err := Export(g, Darknet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := string(m.Arch)
	for _, want := range []string{"[net]", "[convolutional]", "[maxpool]", "[route]", "[upsample]", "filters=255"} {
		if !contains(cfg, want) {
			t.Errorf("cfg missing %q", want)
		}
	}
}

func TestCorruptWeightPayloadRejected(t *testing.T) {
	g, _ := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	m, err := Export(g, TensorFlow)
	if err != nil {
		t.Fatal(err)
	}
	m.Weights = m.Weights[:len(m.Weights)/2]
	if _, err := Import(m); err == nil {
		t.Fatal("truncated weights accepted")
	}
	short := Model{Format: TensorFlow, Arch: m.Arch, Weights: []byte{1, 2}}
	if _, err := Import(short); err == nil {
		t.Fatal("tiny weight payload accepted")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

var _ = tensor.FP32 // keep the import for future weight-precision tests
