// Package frameworks implements serialized model formats in the style of
// the four training frameworks the paper's model zoo spans — Caffe
// (prototxt + binary blobs), TensorFlow (graph-def), Darknet (cfg +
// weights) and PyTorch (state-dict manifest) — together with importers
// that parse them back into the common graph IR. The inference-engine
// builder consumes any of them, mirroring TensorRT's claim of supporting
// the most input frameworks (paper §I, point 2).
package frameworks

import (
	"fmt"

	"edgeinfer/internal/graph"
)

// Format identifies a model serialization format.
type Format string

const (
	Caffe      Format = "caffe"
	TensorFlow Format = "tensorflow"
	Darknet    Format = "darknet"
	PyTorch    Format = "pytorch"
)

// Model is a serialized network: a text/JSON architecture description
// plus a binary weight payload (empty for timing-only graphs).
type Model struct {
	Format  Format
	Arch    []byte // prototxt / graphdef / cfg / manifest
	Weights []byte
}

// Export serializes a graph in the given framework's format.
func Export(g *graph.Graph, f Format) (Model, error) {
	switch f {
	case Caffe:
		return exportCaffe(g)
	case TensorFlow:
		return exportTF(g)
	case Darknet:
		return exportDarknet(g)
	case PyTorch:
		return exportPyTorch(g)
	default:
		return Model{}, fmt.Errorf("frameworks: unknown format %q", f)
	}
}

// Import parses a serialized model back into the graph IR. The returned
// graph is finalized. Malformed input of any shape yields an error, not
// a panic: arch text is untrusted data.
func Import(m Model) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("frameworks: malformed %s model: %v", m.Format, r)
		}
	}()
	switch m.Format {
	case Caffe:
		g, err = importCaffe(m)
	case TensorFlow:
		g, err = importTF(m)
	case Darknet:
		g, err = importDarknet(m)
	case PyTorch:
		g, err = importPyTorch(m)
	default:
		return nil, fmt.Errorf("frameworks: unknown format %q", m.Format)
	}
	if err != nil {
		return nil, err
	}
	g.Framework = string(m.Format)
	if err := g.Finalize(); err != nil {
		return nil, fmt.Errorf("frameworks: imported graph invalid: %w", err)
	}
	if len(g.Layers) < 2 || len(g.Outputs) == 0 {
		return nil, fmt.Errorf("frameworks: imported %s model is empty", m.Format)
	}
	return g, nil
}

// Native returns the framework format a zoo graph was trained in.
func Native(g *graph.Graph) Format {
	switch g.Framework {
	case "tensorflow":
		return TensorFlow
	case "darknet":
		return Darknet
	case "pytorch":
		return PyTorch
	default:
		return Caffe
	}
}
