package frameworks

import (
	"fmt"
	"strconv"
	"strings"

	"edgeinfer/internal/graph"
)

// Caffe-style serialization: a prototxt network description plus a
// binary caffemodel-like weight payload. The prototxt emitter/parser
// covers the layer types the zoo's Caffe models use.

var caffeTypes = map[graph.OpType]string{
	graph.OpConv: "Convolution", graph.OpMaxPool: "Pooling",
	graph.OpAvgPool: "Pooling", graph.OpGlobalAvgPool: "Pooling",
	graph.OpReLU: "ReLU", graph.OpLeakyReLU: "ReLU", graph.OpSigmoid: "Sigmoid",
	graph.OpFC: "InnerProduct", graph.OpBatchNorm: "BatchNorm",
	graph.OpLRN: "LRN", graph.OpSoftmax: "Softmax", graph.OpAdd: "Eltwise",
	graph.OpConcat: "Concat", graph.OpUpsample: "Upsample",
	graph.OpDropout: "Dropout", graph.OpScale: "Scale", graph.OpFlatten: "Flatten",
}

func exportCaffe(g *graph.Graph) (Model, error) {
	h, rs := toRecs(g)
	var b strings.Builder
	fmt.Fprintf(&b, "name: %q\n", h.Name)
	fmt.Fprintf(&b, "# task: %s\n", h.Task)
	fmt.Fprintf(&b, "input: \"data\"\ninput_dim: %d\ninput_dim: %d\ninput_dim: %d\ninput_dim: %d\n",
		h.InputShape[0], h.InputShape[1], h.InputShape[2], h.InputShape[3])
	for _, o := range h.Outputs {
		fmt.Fprintf(&b, "# output: %s\n", o)
	}
	for _, r := range rs {
		typ, ok := caffeTypes[r.Op]
		if !ok {
			return Model{}, fmt.Errorf("frameworks: caffe cannot express op %v (layer %s)", r.Op, r.Name)
		}
		fmt.Fprintf(&b, "layer {\n  name: %q\n  type: %q\n", r.Name, typ)
		for _, in := range r.Inputs {
			fmt.Fprintf(&b, "  bottom: %q\n", in)
		}
		fmt.Fprintf(&b, "  top: %q\n", r.Name)
		switch r.Op {
		case graph.OpConv:
			fmt.Fprintf(&b, "  convolution_param { num_output: %d kernel_size: %d stride: %d pad: %d group: %d }\n",
				r.Conv.OutC, r.Conv.Kernel, r.Conv.Stride, r.Conv.Pad, maxInt(r.Conv.Groups, 1))
		case graph.OpMaxPool:
			fmt.Fprintf(&b, "  pooling_param { pool: MAX kernel_size: %d stride: %d pad: %d }\n",
				r.Pool.Kernel, r.Pool.Stride, r.Pool.Pad)
		case graph.OpAvgPool:
			fmt.Fprintf(&b, "  pooling_param { pool: AVE kernel_size: %d stride: %d pad: %d }\n",
				r.Pool.Kernel, r.Pool.Stride, r.Pool.Pad)
		case graph.OpGlobalAvgPool:
			fmt.Fprintf(&b, "  pooling_param { pool: AVE global_pooling: true }\n")
		case graph.OpFC:
			fmt.Fprintf(&b, "  inner_product_param { num_output: %d }\n", r.OutUnits)
		case graph.OpLRN:
			fmt.Fprintf(&b, "  lrn_param { local_size: %d alpha: %g beta: %g k: %g }\n",
				r.LRNSize, r.Alpha, r.LRNBeta, r.LRNK)
		case graph.OpLeakyReLU:
			fmt.Fprintf(&b, "  relu_param { negative_slope: %g }\n", r.Alpha)
		case graph.OpAdd:
			fmt.Fprintf(&b, "  eltwise_param { operation: SUM }\n")
		}
		b.WriteString("}\n")
	}
	weights, err := encodeWeights(g)
	if err != nil {
		return Model{}, err
	}
	return Model{Format: Caffe, Arch: []byte(b.String()), Weights: weights}, nil
}

// importCaffe parses the prototxt subset emitted above.
func importCaffe(m Model) (*graph.Graph, error) {
	p := &protoParser{lines: strings.Split(string(m.Arch), "\n")}
	h := header{InputShape: [4]int{1, 3, 224, 224}}
	var rs []rec
	dims := 0
	for !p.done() {
		line := strings.TrimSpace(p.next())
		switch {
		case strings.HasPrefix(line, "name:"):
			h.Name = unquote(line[5:])
		case strings.HasPrefix(line, "# task:"):
			h.Task = strings.TrimSpace(line[7:])
		case strings.HasPrefix(line, "# output:"):
			h.Outputs = append(h.Outputs, strings.TrimSpace(line[9:]))
		case strings.HasPrefix(line, "input_dim:"):
			v, _ := strconv.Atoi(strings.TrimSpace(line[10:]))
			if dims < 4 {
				h.InputShape[dims] = v
				dims++
			}
		case line == "layer {":
			r, err := p.parseLayer()
			if err != nil {
				return nil, err
			}
			rs = append(rs, r)
		}
	}
	g, err := fromRecs(h, rs)
	if err != nil {
		return nil, err
	}
	if err := decodeWeights(g, m.Weights); err != nil {
		return nil, err
	}
	return g, nil
}

type protoParser struct {
	lines []string
	pos   int
}

func (p *protoParser) done() bool   { return p.pos >= len(p.lines) }
func (p *protoParser) next() string { s := p.lines[p.pos]; p.pos++; return s }

func (p *protoParser) parseLayer() (rec, error) {
	var r rec
	var typ string
	pooling := ""
	globalPool := false
	for !p.done() {
		line := strings.TrimSpace(p.next())
		switch {
		case line == "}":
			return finishCaffeLayer(r, typ, pooling, globalPool)
		case strings.HasPrefix(line, "name:"):
			r.Name = unquote(line[5:])
		case strings.HasPrefix(line, "type:"):
			typ = unquote(line[5:])
		case strings.HasPrefix(line, "bottom:"):
			r.Inputs = append(r.Inputs, unquote(line[7:]))
		case strings.HasPrefix(line, "convolution_param"):
			kv := parseInlineParams(line)
			r.Conv.OutC = kv.i("num_output")
			r.Conv.Kernel = kv.i("kernel_size")
			r.Conv.Stride = kv.i("stride")
			r.Conv.Pad = kv.i("pad")
			r.Conv.Groups = kv.i("group")
		case strings.HasPrefix(line, "pooling_param"):
			kv := parseInlineParams(line)
			pooling = kv.s("pool")
			r.Pool.Kernel = kv.i("kernel_size")
			r.Pool.Stride = kv.i("stride")
			r.Pool.Pad = kv.i("pad")
			globalPool = kv.s("global_pooling") == "true"
		case strings.HasPrefix(line, "inner_product_param"):
			r.OutUnits = parseInlineParams(line).i("num_output")
		case strings.HasPrefix(line, "lrn_param"):
			kv := parseInlineParams(line)
			r.LRNSize = kv.i("local_size")
			r.Alpha = kv.f("alpha")
			r.LRNBeta = kv.f("beta")
			r.LRNK = kv.f("k")
		case strings.HasPrefix(line, "relu_param"):
			r.Alpha = parseInlineParams(line).f("negative_slope")
		}
	}
	return r, fmt.Errorf("frameworks: unterminated caffe layer %q", r.Name)
}

func finishCaffeLayer(r rec, typ, pooling string, globalPool bool) (rec, error) {
	switch typ {
	case "Convolution":
		r.Op = graph.OpConv
	case "Pooling":
		switch {
		case globalPool:
			r.Op = graph.OpGlobalAvgPool
		case pooling == "AVE":
			r.Op = graph.OpAvgPool
		default:
			r.Op = graph.OpMaxPool
		}
	case "ReLU":
		if r.Alpha != 0 {
			r.Op = graph.OpLeakyReLU
		} else {
			r.Op = graph.OpReLU
		}
	case "Sigmoid":
		r.Op = graph.OpSigmoid
	case "InnerProduct":
		r.Op = graph.OpFC
	case "BatchNorm":
		r.Op = graph.OpBatchNorm
	case "LRN":
		r.Op = graph.OpLRN
	case "Softmax":
		r.Op = graph.OpSoftmax
	case "Eltwise":
		r.Op = graph.OpAdd
	case "Concat":
		r.Op = graph.OpConcat
	case "Upsample":
		r.Op = graph.OpUpsample
	case "Dropout":
		r.Op = graph.OpDropout
	case "Scale":
		r.Op = graph.OpScale
	case "Flatten":
		r.Op = graph.OpFlatten
	default:
		return r, fmt.Errorf("frameworks: unknown caffe layer type %q", typ)
	}
	return r, nil
}

// params is a flat key-value view of an inline proto message.
type params map[string]string

func (p params) i(k string) int {
	v, _ := strconv.Atoi(p[k])
	return v
}

func (p params) f(k string) float32 {
	v, _ := strconv.ParseFloat(p[k], 32)
	return float32(v)
}

func (p params) s(k string) string { return p[k] }

// parseInlineParams parses `foo_param { a: 1 b: 2 }` into a map.
func parseInlineParams(line string) params {
	out := params{}
	open := strings.Index(line, "{")
	close := strings.LastIndex(line, "}")
	if open < 0 || close < open {
		return out
	}
	fields := strings.Fields(line[open+1 : close])
	for i := 0; i+1 < len(fields); i += 2 {
		key := strings.TrimSuffix(fields[i], ":")
		out[key] = fields[i+1]
	}
	return out
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	return strings.Trim(s, `"`)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
