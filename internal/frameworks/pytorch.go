package frameworks

import (
	"encoding/json"
	"fmt"

	"edgeinfer/internal/graph"
)

// PyTorch-style serialization: a traced-module manifest (the structure a
// torch.jit trace plus state_dict carries), JSON-encoded, with the shared
// binary tensor payload standing in for the zip-of-tensors format.

type ptManifest struct {
	ModelName  string
	Task       string
	InputShape [4]int
	Outputs    []string
	Modules    []ptModule
}

type ptModule struct {
	Name   string
	Type   string
	Inputs []string
	Args   map[string]float64 `json:",omitempty"`
}

var ptTypes = map[graph.OpType]string{
	graph.OpConv: "Conv2d", graph.OpMaxPool: "MaxPool2d", graph.OpAvgPool: "AvgPool2d",
	graph.OpGlobalAvgPool: "AdaptiveAvgPool2d", graph.OpReLU: "ReLU",
	graph.OpLeakyReLU: "LeakyReLU", graph.OpSigmoid: "Sigmoid", graph.OpFC: "Linear",
	graph.OpBatchNorm: "BatchNorm2d", graph.OpLRN: "LocalResponseNorm",
	graph.OpSoftmax: "Softmax", graph.OpAdd: "add", graph.OpConcat: "cat",
	graph.OpUpsample: "Upsample", graph.OpDropout: "Dropout", graph.OpScale: "mul",
	graph.OpFlatten: "Flatten",
}

var ptTypesBack = func() map[string]graph.OpType {
	m := map[string]graph.OpType{}
	for k, v := range ptTypes {
		m[v] = k
	}
	return m
}()

func exportPyTorch(g *graph.Graph) (Model, error) {
	h, rs := toRecs(g)
	man := ptManifest{ModelName: h.Name, Task: h.Task, InputShape: h.InputShape, Outputs: h.Outputs}
	for _, r := range rs {
		typ, ok := ptTypes[r.Op]
		if !ok {
			return Model{}, fmt.Errorf("frameworks: pytorch cannot express op %v", r.Op)
		}
		mod := ptModule{Name: r.Name, Type: typ, Inputs: r.Inputs, Args: map[string]float64{}}
		switch r.Op {
		case graph.OpConv:
			mod.Args["out_channels"] = float64(r.Conv.OutC)
			mod.Args["kernel_size"] = float64(r.Conv.Kernel)
			mod.Args["stride"] = float64(r.Conv.Stride)
			mod.Args["padding"] = float64(r.Conv.Pad)
			mod.Args["groups"] = float64(maxInt(r.Conv.Groups, 1))
		case graph.OpMaxPool, graph.OpAvgPool:
			mod.Args["kernel_size"] = float64(r.Pool.Kernel)
			mod.Args["stride"] = float64(r.Pool.Stride)
			mod.Args["padding"] = float64(r.Pool.Pad)
		case graph.OpFC:
			mod.Args["out_features"] = float64(r.OutUnits)
		case graph.OpLeakyReLU:
			mod.Args["negative_slope"] = float64(r.Alpha)
		case graph.OpLRN:
			mod.Args["size"] = float64(r.LRNSize)
			mod.Args["alpha"] = float64(r.Alpha)
			mod.Args["beta"] = float64(r.LRNBeta)
			mod.Args["k"] = float64(r.LRNK)
		}
		man.Modules = append(man.Modules, mod)
	}
	arch, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return Model{}, err
	}
	weights, err := encodeWeights(g)
	if err != nil {
		return Model{}, err
	}
	return Model{Format: PyTorch, Arch: arch, Weights: weights}, nil
}

func importPyTorch(m Model) (*graph.Graph, error) {
	var man ptManifest
	if err := json.Unmarshal(m.Arch, &man); err != nil {
		return nil, fmt.Errorf("frameworks: bad pytorch manifest: %w", err)
	}
	h := header{Name: man.ModelName, Task: man.Task, InputShape: man.InputShape, Outputs: man.Outputs}
	var rs []rec
	for _, mod := range man.Modules {
		op, ok := ptTypesBack[mod.Type]
		if !ok {
			return nil, fmt.Errorf("frameworks: unknown pytorch module %q", mod.Type)
		}
		r := rec{Name: mod.Name, Op: op, Inputs: mod.Inputs}
		a := func(k string) float64 { return mod.Args[k] }
		switch op {
		case graph.OpConv:
			r.Conv.OutC = int(a("out_channels"))
			r.Conv.Kernel = int(a("kernel_size"))
			r.Conv.Stride = int(a("stride"))
			r.Conv.Pad = int(a("padding"))
			r.Conv.Groups = int(a("groups"))
		case graph.OpMaxPool, graph.OpAvgPool:
			r.Pool.Kernel = int(a("kernel_size"))
			r.Pool.Stride = int(a("stride"))
			r.Pool.Pad = int(a("padding"))
		case graph.OpFC:
			r.OutUnits = int(a("out_features"))
		case graph.OpLeakyReLU:
			r.Alpha = float32(a("negative_slope"))
		case graph.OpLRN:
			r.LRNSize = int(a("size"))
			r.Alpha = float32(a("alpha"))
			r.LRNBeta = float32(a("beta"))
			r.LRNK = float32(a("k"))
		}
		rs = append(rs, r)
	}
	g, err := fromRecs(h, rs)
	if err != nil {
		return nil, err
	}
	if err := decodeWeights(g, m.Weights); err != nil {
		return nil, err
	}
	return g, nil
}
