package frameworks

import (
	"fmt"
	"strconv"
	"strings"

	"edgeinfer/internal/graph"
)

// Darknet-style serialization: an INI-like .cfg where sections are layers
// in order and cross-references are layer indices (route/shortcut), plus
// the shared weight payload. Faithful to Darknet's quirk that the graph
// is a numbered list, not a named DAG.

func exportDarknet(g *graph.Graph) (Model, error) {
	h, rs := toRecs(g)
	// name -> section index ("data" is -1, sections are 0-based).
	index := map[string]int{"data": -1}
	var b strings.Builder
	fmt.Fprintf(&b, "[net]\n# name=%s\n# task=%s\nbatch=%d\nchannels=%d\nheight=%d\nwidth=%d\n",
		h.Name, h.Task, h.InputShape[0], h.InputShape[1], h.InputShape[2], h.InputShape[3])
	for _, o := range h.Outputs {
		fmt.Fprintf(&b, "# output=%s\n", o)
	}
	sec := 0
	emit := func(kind string, kv ...string) {
		fmt.Fprintf(&b, "\n[%s]\n", kind)
		for _, line := range kv {
			b.WriteString(line + "\n")
		}
	}
	ref := func(name string) (int, error) {
		idx, ok := index[name]
		if !ok {
			return 0, fmt.Errorf("frameworks: darknet forward reference to %q", name)
		}
		return idx, nil
	}
	for _, r := range rs {
		// Darknet sections implicitly consume the previous section; when
		// the input is elsewhere, a route section redirects first.
		if len(r.Inputs) == 1 {
			in, err := ref(r.Inputs[0])
			if err != nil {
				return Model{}, err
			}
			if in != sec-1 && r.Op != graph.OpAdd && r.Op != graph.OpConcat {
				emit("route", fmt.Sprintf("layers=%d", in), "# redirect")
				sec++
			}
		}
		switch r.Op {
		case graph.OpConv:
			emit("convolutional",
				fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("filters=%d", r.Conv.OutC),
				fmt.Sprintf("size=%d", r.Conv.Kernel),
				fmt.Sprintf("stride=%d", r.Conv.Stride),
				fmt.Sprintf("pad=%d", r.Conv.Pad),
				fmt.Sprintf("groups=%d", maxInt(r.Conv.Groups, 1)),
				"activation=linear")
		case graph.OpMaxPool:
			emit("maxpool", fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("size=%d", r.Pool.Kernel),
				fmt.Sprintf("stride=%d", r.Pool.Stride),
				fmt.Sprintf("padding=%d", r.Pool.Pad))
		case graph.OpAvgPool:
			emit("avgpool", fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("size=%d", r.Pool.Kernel),
				fmt.Sprintf("stride=%d", r.Pool.Stride),
				fmt.Sprintf("padding=%d", r.Pool.Pad))
		case graph.OpGlobalAvgPool:
			emit("avgpool", fmt.Sprintf("# name=%s", r.Name), "global=1")
		case graph.OpReLU:
			emit("activation", fmt.Sprintf("# name=%s", r.Name), "activation=relu")
		case graph.OpLeakyReLU:
			emit("activation", fmt.Sprintf("# name=%s", r.Name), "activation=leaky",
				fmt.Sprintf("slope=%g", r.Alpha))
		case graph.OpSigmoid:
			emit("activation", fmt.Sprintf("# name=%s", r.Name), "activation=logistic")
		case graph.OpFC:
			emit("connected", fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("output=%d", r.OutUnits))
		case graph.OpBatchNorm:
			emit("batchnorm", fmt.Sprintf("# name=%s", r.Name))
		case graph.OpLRN:
			emit("lrn", fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("size=%d", r.LRNSize), fmt.Sprintf("alpha=%g", r.Alpha),
				fmt.Sprintf("beta=%g", r.LRNBeta), fmt.Sprintf("k=%g", r.LRNK))
		case graph.OpSoftmax:
			emit("softmax", fmt.Sprintf("# name=%s", r.Name))
		case graph.OpDropout:
			emit("dropout", fmt.Sprintf("# name=%s", r.Name), "probability=0.5")
		case graph.OpUpsample:
			emit("upsample", fmt.Sprintf("# name=%s", r.Name), "stride=2")
		case graph.OpFlatten:
			emit("flatten", fmt.Sprintf("# name=%s", r.Name))
		case graph.OpScale:
			emit("scale_channels", fmt.Sprintf("# name=%s", r.Name))
		case graph.OpConcat:
			idxs := make([]string, len(r.Inputs))
			for i, in := range r.Inputs {
				v, err := ref(in)
				if err != nil {
					return Model{}, err
				}
				idxs[i] = strconv.Itoa(v)
			}
			emit("route", fmt.Sprintf("# name=%s", r.Name),
				"layers="+strings.Join(idxs, ","))
		case graph.OpAdd:
			if len(r.Inputs) != 2 {
				return Model{}, fmt.Errorf("frameworks: darknet shortcut needs 2 inputs, layer %s has %d", r.Name, len(r.Inputs))
			}
			a, err := ref(r.Inputs[0])
			if err != nil {
				return Model{}, err
			}
			c, err := ref(r.Inputs[1])
			if err != nil {
				return Model{}, err
			}
			// shortcut consumes the previous section and references `from`.
			if a != sec-1 && c != sec-1 {
				emit("route", fmt.Sprintf("layers=%d", a), "# redirect")
				sec++
				a = sec - 1
			}
			from := c
			if c == sec-1 {
				from = a
			}
			emit("shortcut", fmt.Sprintf("# name=%s", r.Name),
				fmt.Sprintf("from=%d", from), "activation=linear")
		default:
			return Model{}, fmt.Errorf("frameworks: darknet cannot express op %v", r.Op)
		}
		index[r.Name] = sec
		sec++
	}
	weights, err := encodeWeights(g)
	if err != nil {
		return Model{}, err
	}
	return Model{Format: Darknet, Arch: []byte(b.String()), Weights: weights}, nil
}

// importDarknet parses the cfg back. Section names come from the
// "# name=" comments the exporter writes; unnamed redirect routes are
// skipped as pure wiring.
func importDarknet(m Model) (*graph.Graph, error) {
	sections, net, err := splitCfg(string(m.Arch))
	if err != nil {
		return nil, err
	}
	h := header{
		Name: net["# name"], Task: net["# task"],
		InputShape: [4]int{atoi(net["batch"]), atoi(net["channels"]), atoi(net["height"]), atoi(net["width"])},
	}
	for _, o := range strings.Split(net["# outputs"], ",") {
		if o != "" {
			h.Outputs = append(h.Outputs, o)
		}
	}
	nameOf := map[int]string{-1: "data"}
	var rs []rec
	prevName := "data"
	for i, s := range sections {
		name := s.kv["# name"]
		switch s.kind {
		case "route":
			var inputs []string
			for _, part := range strings.Split(s.kv["layers"], ",") {
				idx := atoi(strings.TrimSpace(part))
				inputs = append(inputs, nameOf[idx])
			}
			if name == "" { // pure redirect
				nameOf[i] = inputs[0]
				prevName = inputs[0]
				continue
			}
			rs = append(rs, rec{Name: name, Op: graph.OpConcat, Inputs: inputs})
		case "shortcut":
			from := nameOf[atoi(s.kv["from"])]
			rs = append(rs, rec{Name: name, Op: graph.OpAdd, Inputs: []string{prevName, from}})
		default:
			r, err := darknetRec(s, name, prevName)
			if err != nil {
				return nil, err
			}
			rs = append(rs, r)
		}
		nameOf[i] = name
		prevName = name
	}
	g, err := fromRecs(h, rs)
	if err != nil {
		return nil, err
	}
	if err := decodeWeights(g, m.Weights); err != nil {
		return nil, err
	}
	return g, nil
}

func darknetRec(s cfgSection, name, prev string) (rec, error) {
	r := rec{Name: name, Inputs: []string{prev}}
	switch s.kind {
	case "convolutional":
		r.Op = graph.OpConv
		r.Conv.OutC = atoi(s.kv["filters"])
		r.Conv.Kernel = atoi(s.kv["size"])
		r.Conv.Stride = atoi(s.kv["stride"])
		r.Conv.Pad = atoi(s.kv["pad"])
		r.Conv.Groups = atoi(s.kv["groups"])
	case "maxpool":
		r.Op = graph.OpMaxPool
		r.Pool.Kernel = atoi(s.kv["size"])
		r.Pool.Stride = atoi(s.kv["stride"])
		r.Pool.Pad = atoi(s.kv["padding"])
	case "avgpool":
		if s.kv["global"] == "1" {
			r.Op = graph.OpGlobalAvgPool
		} else {
			r.Op = graph.OpAvgPool
			r.Pool.Kernel = atoi(s.kv["size"])
			r.Pool.Stride = atoi(s.kv["stride"])
			r.Pool.Pad = atoi(s.kv["padding"])
		}
	case "activation":
		switch s.kv["activation"] {
		case "leaky":
			r.Op = graph.OpLeakyReLU
			r.Alpha = atof(s.kv["slope"])
		case "logistic":
			r.Op = graph.OpSigmoid
		default:
			r.Op = graph.OpReLU
		}
	case "connected":
		r.Op = graph.OpFC
		r.OutUnits = atoi(s.kv["output"])
	case "batchnorm":
		r.Op = graph.OpBatchNorm
	case "lrn":
		r.Op = graph.OpLRN
		r.LRNSize = atoi(s.kv["size"])
		r.Alpha = atof(s.kv["alpha"])
		r.LRNBeta = atof(s.kv["beta"])
		r.LRNK = atof(s.kv["k"])
	case "softmax":
		r.Op = graph.OpSoftmax
	case "dropout":
		r.Op = graph.OpDropout
	case "upsample":
		r.Op = graph.OpUpsample
	case "flatten":
		r.Op = graph.OpFlatten
	case "scale_channels":
		r.Op = graph.OpScale
	default:
		return r, fmt.Errorf("frameworks: unknown darknet section [%s]", s.kind)
	}
	return r, nil
}

type cfgSection struct {
	kind string
	kv   map[string]string
}

// splitCfg splits a darknet cfg into the [net] header and layer sections.
func splitCfg(cfg string) ([]cfgSection, map[string]string, error) {
	var sections []cfgSection
	var net map[string]string
	var cur *cfgSection
	var outputs []string
	for _, raw := range strings.Split(cfg, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			kind := line[1 : len(line)-1]
			if kind == "net" {
				net = map[string]string{}
				cur = &cfgSection{kind: kind, kv: net}
			} else {
				sections = append(sections, cfgSection{kind: kind, kv: map[string]string{}})
				cur = &sections[len(sections)-1]
			}
			continue
		}
		if cur == nil {
			return nil, nil, fmt.Errorf("frameworks: cfg line outside section: %q", line)
		}
		if strings.HasPrefix(line, "# output=") {
			outputs = append(outputs, strings.TrimPrefix(line, "# output="))
			continue
		}
		if eq := strings.Index(line, "="); eq > 0 {
			cur.kv[strings.TrimSpace(line[:eq])] = strings.TrimSpace(line[eq+1:])
		}
	}
	if net == nil {
		return nil, nil, fmt.Errorf("frameworks: cfg missing [net] section")
	}
	net["# outputs"] = strings.Join(outputs, ",")
	return sections, net, nil
}

func atoi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

func atof(s string) float32 {
	v, _ := strconv.ParseFloat(s, 32)
	return float32(v)
}
