// Package atomicfile provides crash-safe file writes for every on-disk
// artifact the tools produce — engine plans, timing caches, exported
// models, result tables, CSVs and traces. Data is written to a
// temporary file in the destination directory, fsync'd, and renamed
// over the target, so an interrupted run never leaves a truncated
// artifact behind for the hardened loaders to reject: readers observe
// either the old complete file or the new complete file, never a
// partial one.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data at the given
// permissions. The temporary file is created next to the target (a
// rename across filesystems is not atomic) and removed on any failure.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	// The durability point: data must hit the disk before the rename
	// publishes the file, or a crash could expose an empty rename target.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: publish %s: %w", path, err)
	}
	// Best-effort directory sync so the rename itself survives a crash;
	// some filesystems do not support fsync on directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
