package atomicfile_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeinfer/internal/atomicfile"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.bin")
	if err := atomicfile.WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content %q, want %q", got, "first")
	}
	// Replacement is in-place atomic: content flips completely.
	if err := atomicfile.WriteFile(path, []byte("second, longer payload"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second, longer payload" {
		t.Fatalf("content %q after replace", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("permissions %v, want 0600", info.Mode().Perm())
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := atomicfile.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d directory entries, want 1", len(entries))
	}
}

func TestWriteFileMissingDirErrors(t *testing.T) {
	if err := atomicfile.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
