// Command fleetcheck audits a model for deployment-fleet consistency —
// the operational question the paper's findings raise: if every unit in
// a fleet builds its own engine from the same trained model, how much do
// the units disagree? It builds several engines per platform and reports
// tactic divergence, latency spread, engine-size spread and (for models
// with numeric proxies) output disagreement, then prints the paper's
// remedy: build once, serialize the plan, deploy the same binary
// everywhere.
//
// Usage:
//
//	fleetcheck -model resnet18               # 3 engines per platform
//	fleetcheck -model inceptionv4 -engines 5
//	fleetcheck -model resnet18 -sharedCache  # timing-cache convergence audit
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
)

func main() {
	model := flag.String("model", "resnet18", "zoo model name")
	engines := flag.Int("engines", 3, "engines to build per platform")
	runs := flag.Int("runs", 10, "latency runs per engine")
	images := flag.Int("images", 500, "evidence images for output comparison (proxy models)")
	shared := flag.Bool("sharedCache", false, "audit the remedy instead of the hazard: units share a timing cache and must converge to byte-identical engines")
	flag.Parse()

	g, err := models.Build(*model)
	if err != nil {
		fail(err)
	}

	if *shared {
		sharedCacheAudit(g, *model, *engines)
		return
	}
	fmt.Printf("fleetcheck: %s, %d engines per platform\n\n", *model, *engines)

	type unit struct {
		name   string
		engine *core.Engine
		stats  metrics.LatencyStats
	}
	var fleet []unit
	hazards := 0

	for _, spec := range gpusim.Platforms() {
		dev := gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
		for b := 1; b <= *engines; b++ {
			e, err := core.Build(g, core.DefaultConfig(spec, b))
			if err != nil {
				fail(err)
			}
			secs := make([]float64, *runs)
			for i := range secs {
				secs[i] = e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, RunIndex: i}).LatencySec
			}
			fleet = append(fleet, unit{
				name:   fmt.Sprintf("%s#%d", spec.Short(), b),
				engine: e,
				stats:  metrics.Latencies(secs),
			})
		}
	}

	fmt.Println("unit      latency (ms)     size (MB)  kernels  distinct tactics")
	for _, u := range fleet {
		fmt.Printf("%-8s  %-15s  %9.2f  %7d  %d\n", u.name, u.stats.String(),
			float64(u.engine.SizeBytes())/1e6, len(u.engine.Launches), len(u.engine.KernelCounts()))
	}

	// Tactic divergence within each platform.
	fmt.Println()
	for p := 0; p < 2; p++ {
		base := fleet[p**engines]
		diverged := 0
		for i := 1; i < *engines; i++ {
			if !sameKernelCounts(base.engine, fleet[p**engines+i].engine) {
				diverged++
			}
		}
		fmt.Printf("%s: %d of %d rebuilt engines selected different kernels than engine #1\n",
			base.engine.Platform, diverged, *engines-1)
		if diverged > 0 {
			hazards++
		}
	}

	// Latency spread across the whole fleet.
	lo, hi := fleet[0].stats.MeanMS, fleet[0].stats.MeanMS
	for _, u := range fleet[1:] {
		if u.stats.MeanMS < lo {
			lo = u.stats.MeanMS
		}
		if u.stats.MeanMS > hi {
			hi = u.stats.MeanMS
		}
	}
	spreadPct := 100 * (hi - lo) / hi
	fmt.Printf("fleet latency spread: %.2f-%.2f ms (%.1f%%)\n", lo, hi, spreadPct)
	if spreadPct > 5 {
		hazards++
	}

	// Output disagreement (numeric proxies only).
	if models.HasProxy(*model) {
		disagree, total := outputDisagreement(*model, *engines, *images)
		fmt.Printf("output disagreement across fleet pairs: %d of %d prediction pairs\n", disagree, total)
		if disagree > 0 {
			hazards++
		}
	} else {
		fmt.Printf("(no numeric proxy for %s; output comparison skipped)\n", *model)
	}

	fmt.Println()
	if hazards > 0 {
		fmt.Printf("VERDICT: %d consistency hazard(s) found.\n", hazards)
		fmt.Println("Remedy (paper §VI-A): build the engine ONCE, serialize the plan")
		fmt.Println("(rtexec -save), and deploy that exact binary to every unit. Never")
		fmt.Println("rebuild per unit: rebuilds change outputs, latencies and WCET.")
		os.Exit(1)
	}
	fmt.Println("VERDICT: fleet consistent at this sample size (hazards remain possible; see paper Tables V-VI).")
}

// sharedCacheAudit builds N units per platform against one shared timing
// cache: unit #1 is the cold build that pays the tactic-timing cost and
// populates the cache; units #2..N must come out warm, tactic-equal to
// unit #1 and byte-identical to each other (canonical warm build id).
// Any divergence is a hazard and exits non-zero — this is the CI gate
// for the "build once" mechanism.
func sharedCacheAudit(g *graph.Graph, model string, engines int) {
	fmt.Printf("fleetcheck: %s, shared-cache convergence audit, %d units per platform\n\n", model, engines)
	hazards := 0
	for _, spec := range gpusim.Platforms() {
		cache := core.NewTimingCache()
		var coldCost float64
		var cold *core.Engine
		var warmBytes []byte
		warmIdentical, tacticEqual := true, true
		for b := 1; b <= engines; b++ {
			cfg := core.DefaultConfig(spec, b)
			cfg.TunerNoise = 0.08 + 0.01*float64(b) // per-unit noise settings must not matter
			cfg.TimingCache = cache
			cfg.CanonicalWarmID = true
			e, err := core.Build(g, cfg)
			if err != nil {
				fail(err)
			}
			if b == 1 {
				cold = e
				coldCost = e.Report.TuneCostSec
				continue
			}
			if !e.Report.WarmBuild || e.Report.CacheMisses != 0 {
				fmt.Printf("%s unit #%d: NOT warm (%d misses)\n", spec.Short(), b, e.Report.CacheMisses)
				hazards++
				continue
			}
			if !sameKernelCounts(cold, e) {
				tacticEqual = false
			}
			var buf bytes.Buffer
			if err := e.Save(&buf); err != nil {
				fail(err)
			}
			if warmBytes == nil {
				warmBytes = buf.Bytes()
			} else if !bytes.Equal(warmBytes, buf.Bytes()) {
				warmIdentical = false
			}
		}
		fmt.Printf("%s: cold unit paid %.1f ms tactic timing (%d entries cached); %d warm units: tactic-equal=%v byte-identical=%v\n",
			spec.Short(), coldCost*1e3, cache.Len(), engines-1, tacticEqual, warmIdentical)
		if !tacticEqual || !warmIdentical {
			hazards++
		}
	}
	fmt.Println()
	if hazards > 0 {
		fmt.Printf("VERDICT: %d shared-cache convergence hazard(s) found.\n", hazards)
		os.Exit(1)
	}
	fmt.Println("VERDICT: shared-cache fleet converged (warm units byte-identical per platform).")
}

// sameKernelCounts compares the kernel-count maps of two engines.
func sameKernelCounts(a, b *core.Engine) bool {
	ca, cb := a.KernelCounts(), b.KernelCounts()
	if len(ca) != len(cb) {
		return false
	}
	for k, v := range ca {
		if cb[k] != v {
			return false
		}
	}
	return true
}

// outputDisagreement runs all fleet engines of the proxy over evidence
// images and counts pairwise prediction differences.
func outputDisagreement(model string, engines, images int) (int, int) {
	proxy, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		fail(err)
	}
	cfg := dataset.DefaultBenign((images + dataset.NumClasses - 1) / dataset.NumClasses)
	set := dataset.Benign(cfg)
	if len(set) > images {
		set = set[:images]
	}
	var preds [][]int
	for _, spec := range gpusim.Platforms() {
		for b := 1; b <= engines; b++ {
			e, err := core.Build(proxy, core.DefaultConfig(spec, b))
			if err != nil {
				fail(err)
			}
			p := make([]int, len(set))
			for i, s := range set {
				o, err := e.Infer(s.Image)
				if err != nil {
					fail(err)
				}
				p[i] = o[0].Argmax()
			}
			preds = append(preds, p)
		}
	}
	disagree, total := 0, 0
	for i := 0; i < len(preds); i++ {
		for j := i + 1; j < len(preds); j++ {
			disagree += metrics.Mismatches(preds[i], preds[j])
			total += len(set)
		}
	}
	return disagree, total
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetcheck:", err)
	os.Exit(1)
}
