// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report, so CI can archive benchmark smokes (and
// diff ns/op and allocs/op across commits) without scraping the text
// format downstream. Standard metrics (ns/op, B/op, allocs/op) get
// dedicated fields; every custom b.ReportMetric unit lands in Metrics.
//
// Usage:
//
//	go test -bench=... -benchmem | go run ./cmd/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edgeinfer/internal/atomicfile"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark's full name including the -P GOMAXPROCS
	// suffix, as printed by the testing package.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; -1 when the
	// run did not report them.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every other unit on the line (custom b.ReportMetric
	// output such as "alexnet-trt-err%"), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output path ('' for stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := atomicfile.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
}

// parse scans bench output for result lines. A result line is
//
//	Benchmark<Name>-P <iterations> <value> <unit> [<value> <unit>...]
//
// interleaved with arbitrary test chatter, which is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	b := Benchmark{BytesPerOp: -1, AllocsPerOp: -1}
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return b, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return b, false
	}
	b.Name = f[0]
	b.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return b, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
