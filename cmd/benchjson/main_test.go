package main

import (
	"strings"
	"testing"
)

// parse extracts result lines from interleaved chatter, mapping the
// standard units to their dedicated fields and every custom unit —
// including the loadgen serving metrics — into Metrics.
func TestParseBenchOutput(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkNumericInference-8 12 98765 ns/op 1024 B/op 3 allocs/op",
		"loadgen: 400 arrivals over 200ms",
		"BenchmarkServeLoad 142 54353551 ns/op 60489882 p99-ns/op 60685203 p999-ns/op 606.89 req/s 39.00 shed-% 45.00 miss-% 64 max-depth",
		"PASS",
	}, "\n")
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}

	num := rep.Benchmarks[0]
	if num.Name != "BenchmarkNumericInference-8" || num.Iterations != 12 {
		t.Fatalf("first line: %+v", num)
	}
	if num.NsPerOp != 98765 || num.BytesPerOp != 1024 || num.AllocsPerOp != 3 {
		t.Fatalf("standard units misparsed: %+v", num)
	}

	load := rep.Benchmarks[1]
	if load.Name != "BenchmarkServeLoad" || load.Iterations != 142 || load.NsPerOp != 54353551 {
		t.Fatalf("loadgen line: %+v", load)
	}
	want := map[string]float64{
		"p99-ns/op":  60489882,
		"p999-ns/op": 60685203,
		"req/s":      606.89,
		"shed-%":     39,
		"miss-%":     45,
		"max-depth":  64,
	}
	for unit, v := range want {
		if load.Metrics[unit] != v {
			t.Fatalf("metric %q = %v, want %v (%+v)", unit, load.Metrics[unit], v, load.Metrics)
		}
	}
	// -benchmem columns absent: the sentinel says so.
	if load.BytesPerOp != -1 || load.AllocsPerOp != -1 {
		t.Fatalf("missing benchmem columns not sentineled: %+v", load)
	}
}

// Lines that merely resemble results are rejected, not half-parsed.
func TestParseLineRejectsChatter(t *testing.T) {
	for _, line := range []string{
		"",
		"ok  	edgeinfer/internal/serve	25.382s",
		"Benchmark with spaces 12 34 ns/op", // non-numeric iterations
		"BenchmarkX twelve 34 ns/op",        // non-numeric iterations
		"BenchmarkX 12 notanumber ns/op",    // non-numeric value
		"BenchmarkX 12",                     // no value/unit pairs
		"loadgen: smoke ok (overload shed cleanly)",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parsed chatter line %q", line)
		}
	}
}

// An odd trailing field (a value with no unit) is ignored rather than
// inventing a metric.
func TestParseLineOddTrailingField(t *testing.T) {
	b, ok := parseLine("BenchmarkY 5 100 ns/op 7")
	if !ok || b.NsPerOp != 100 {
		t.Fatalf("line with odd tail: ok=%v %+v", ok, b)
	}
	if len(b.Metrics) != 0 {
		t.Fatalf("odd tail invented metrics: %+v", b.Metrics)
	}
}
