// Command predbench measures what the learned latency predictor buys a
// cold engine build: the whole model zoo is built twice per build id —
// unpruned (the tuner times every candidate) and pruned (the trained
// predictor ranks the menu and only the top-k plus guard band are timed)
// — and the modeled tactic-timing costs are compared. Two
// benchjson-parseable result lines land on stdout for CI to archive:
//
//	go run ./cmd/predbench -smoke | go run ./cmd/benchjson -out BENCH_build.json
//
// The run is also the acceptance gate for the pruner's default k: it
// fails (exit 1) when any pruned build picks a different tactic than its
// unpruned twin, or when the zoo-wide tactic-timing cut falls below
// -minCut. The predictor is trained from scratch on a build-1 zoo
// timing cache each run — no checked-in model file — so the gate also
// covers the training pipeline end to end.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/latpred"
	"edgeinfer/internal/models"
)

func main() {
	smoke := flag.Bool("smoke", false, "CI smoke: one comparison build id instead of three")
	builds := flag.Int("builds", 3, "number of comparison build ids (starting at 2)")
	topK := flag.Int("topk", 0, "candidates kept per layer (0 = core default)")
	minCut := flag.Float64("minCut", 0.5, "minimum zoo-wide tactic-timing cost cut")
	platform := flag.String("platform", "NX", "build platform (NX or AGX)")
	saveModel := flag.String("saveModel", "", "also save the trained predictor to this path")
	flag.Parse()
	if *smoke {
		*builds = 1
	}

	spec := gpusim.XavierNX()
	if *platform == "AGX" {
		spec = gpusim.XavierAGX()
	}

	// Seed: one cold zoo pass banks the training corpus, exactly the
	// measurements a build farm accumulates for free.
	cache := core.NewTimingCache()
	var seedCost float64
	for _, name := range models.List() {
		cfg := core.DefaultConfig(spec, 1)
		cfg.TimingCache = cache
		e, err := core.Build(models.MustBuild(name), cfg)
		if err != nil {
			fatal(err)
		}
		seedCost += e.Report.TuneCostSec
	}
	model, stats, err := latpred.Train(cache, latpred.DefaultTrainOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "predbench: trained on %d rows (%d skipped) from %d cache entries: %s\n",
		stats.Rows, stats.Skipped, cache.Len(), model)
	if *saveModel != "" {
		if err := model.SaveFile(*saveModel); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "predbench: saved model to %s\n", *saveModel)
	}

	var tuneUn, tunePr, savedSec float64
	var timedUn, timedPr, prunes, fallbacks, diffs, engines int
	for id := 2; id < 2+*builds; id++ {
		for _, name := range models.List() {
			g := models.MustBuild(name)
			un, err := core.Build(g, core.DefaultConfig(spec, id))
			if err != nil {
				fatal(err)
			}
			cfg := core.DefaultConfig(spec, id)
			cfg.Predictor = model
			cfg.PredictTopK = *topK
			pr, err := core.Build(g, cfg)
			if err != nil {
				fatal(err)
			}
			for layer, v := range un.Choices {
				if pr.Choices[layer] != v {
					diffs++
					fmt.Fprintf(os.Stderr, "predbench: %s build %d layer %s: %v -> %v\n",
						name, id, layer, v, pr.Choices[layer])
				}
			}
			tuneUn += un.Report.TuneCostSec
			tunePr += pr.Report.TuneCostSec
			savedSec += pr.Report.PrunedTuneCostSavedSec
			timedUn += un.Report.TacticsTimed
			timedPr += pr.Report.TacticsTimed
			prunes += pr.Report.PredictedPrunes
			fallbacks += pr.Report.PredictorFallbacks
			engines++
		}
	}
	cut := 1 - tunePr/tuneUn

	// ns/op is the modeled tactic-timing cost per engine build, so the
	// pruned/unpruned speedup is diffable straight from BENCH_build.json.
	fmt.Printf("BenchmarkColdBuildZoo %d %.0f ns/op %.6f tune-cost-sec %d tactics-timed\n",
		engines, tuneUn/float64(engines)*1e9, tuneUn, timedUn)
	fmt.Printf("BenchmarkColdBuildZooPruned %d %.0f ns/op %.6f tune-cost-sec %d tactics-timed %d pruned-tactics %.6f tune-cost-saved-sec %.4f cut-frac %d choice-diffs %d fallbacks\n",
		engines, tunePr/float64(engines)*1e9, tunePr, timedPr, prunes, savedSec, cut, diffs, fallbacks)

	if diffs != 0 {
		fatal(fmt.Errorf("%d tactic choices changed under pruning (must be 0)", diffs))
	}
	if cut < *minCut {
		fatal(fmt.Errorf("tactic-timing cut %.1f%% below the %.1f%% gate", 100*cut, 100**minCut))
	}
	fmt.Fprintf(os.Stderr, "predbench: %d engines, cut %.1f%%, %d pruned, %d fallbacks, 0 choice diffs\n",
		engines, 100*cut, prunes, fallbacks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predbench:", err)
	os.Exit(1)
}
