// Command benchtables regenerates the paper's evaluation artifacts —
// every table (I-XVIII) and figure (3-4) — on the simulator and prints
// them in the paper's layout.
//
// Usage:
//
//	benchtables -all            # everything (default)
//	benchtables -table 8        # one table
//	benchtables -figure 3       # one figure
//	benchtables -ext            # extension experiments (precision/batch/energy/DVFS/detection/thermal)
//	benchtables -csv DIR        # also export figure data as CSV
//	benchtables -full           # paper-scale dataset sizes (slower)
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/experiments"
)

func main() {
	tableN := flag.Int("table", 0, "render one table (1-18)")
	ext := flag.Bool("ext", false, "render the extension experiments (precision study)")
	figureN := flag.Int("figure", 0, "render one figure (3 or 4)")
	all := flag.Bool("all", false, "render every table and figure")
	full := flag.Bool("full", false, "paper-scale dataset sizes (slower)")
	csvDir := flag.String("csv", "", "also write figure data as CSV files into this directory")
	tcDir := flag.String("timingCache", "", "directory of per-build timing caches: loaded before and saved after regeneration, so repeated runs skip tactic re-timing")
	flag.Parse()

	opts := experiments.Default()
	if *full {
		opts = experiments.Full()
	}
	if *tcDir != "" {
		if err := os.MkdirAll(*tcDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		opts.TimingCacheDir = *tcDir
	}
	lab := experiments.NewLab(opts)
	defer func() {
		if err := lab.SaveTimingCaches(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}()

	tables := map[int]func() string{
		1: lab.RenderTable1, 2: lab.RenderTable2, 3: lab.RenderTable3,
		4: lab.RenderTable4, 5: lab.RenderTable5, 6: lab.RenderTable6,
		7: lab.RenderTable7, 8: lab.RenderTable8, 9: lab.RenderTable9,
		10: lab.RenderTable10, 11: lab.RenderTable11, 12: lab.RenderTable12,
		13: lab.RenderTable13, 14: lab.RenderTable14, 15: lab.RenderTable15,
		16: lab.RenderTable16, 17: lab.RenderTable17, 18: lab.RenderTable18,
	}
	figures := map[int]func() string{3: lab.RenderFigure3, 4: lab.RenderFigure4}

	switch {
	case *ext:
		precision, err := lab.RenderPrecisionStudy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(precision)
		batch, err := lab.RenderBatchSweep()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(batch)
		fmt.Println(lab.RenderEnergyStudy())
		fmt.Println(lab.RenderClockSweep())
		fmt.Println(lab.RenderDetectionStudy())
		fmt.Println(lab.RenderThermalStudy())
		cacheStudy, err := lab.RenderCacheStudy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(cacheStudy)
		transfer, err := lab.RenderLatPredTransfer()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(transfer)
	case *tableN != 0:
		fn, ok := tables[*tableN]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no table %d\n", *tableN)
			os.Exit(2)
		}
		fmt.Println(fn())
	case *figureN != 0:
		fn, ok := figures[*figureN]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: no figure %d\n", *figureN)
			os.Exit(2)
		}
		fmt.Println(fn())
	default:
		_ = all
		if *csvDir != "" {
			writeCSVs(lab, *csvDir)
		}
		for i := 1; i <= 18; i++ {
			fmt.Println(tables[i]())
			if i == 7 {
				fmt.Println(figures[3]())
				fmt.Println(figures[4]())
			}
		}
	}
}

// writeCSVs exports the figures' data series for external plotting.
func writeCSVs(lab *experiments.Lab, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	for name, series := range map[string][]experiments.FigureSeries{
		"figure3.csv": lab.Figure3(),
		"figure4.csv": lab.Figure4(),
	} {
		path := dir + "/" + name
		if err := atomicfile.WriteFile(path, []byte(experiments.FigureCSV(series)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}
