package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"edgeinfer/internal/analysis"
)

// fakeModule gives verdict a module root so baseline paths resolve.
func fakeModule(t *testing.T) *analysis.Module {
	t.Helper()
	return &analysis.Module{Path: "edgeinfer", Dir: t.TempDir()}
}

func finding(m *analysis.Module, analyzer, file, msg string, line int) analysis.Finding {
	return analysis.Finding{
		Analyzer: analyzer,
		Severity: analysis.Error,
		Pos:      token.Position{Filename: filepath.Join(m.Dir, file), Line: line, Column: 1},
		Message:  msg,
	}
}

func writeBaseline(t *testing.T, m *analysis.Module, findings []analysis.Finding) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := analysis.NewBaseline(m, findings).Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// A finding absent from the baseline fails the gate.
func TestVerdictNewFindingFails(t *testing.T) {
	m := fakeModule(t)
	old := finding(m, "lockorder", "internal/serve/pool.go", "mu held across channel send", 10)
	fresh := finding(m, "goleak", "internal/netserve/server.go", "goroutine has no stop path", 20)
	base := writeBaseline(t, m, []analysis.Finding{old})
	var out bytes.Buffer
	if code := verdict(&out, m, []analysis.Finding{old, fresh}, nil, false, base); code != 1 {
		t.Fatalf("new finding exits %d, want 1", code)
	}
}

// Grandfathered findings pass: the ledger exists to track them.
func TestVerdictGrandfatheredPasses(t *testing.T) {
	m := fakeModule(t)
	old := finding(m, "lockorder", "internal/serve/pool.go", "mu held across channel send", 10)
	base := writeBaseline(t, m, []analysis.Finding{old})
	var out bytes.Buffer
	if code := verdict(&out, m, []analysis.Finding{old}, nil, false, base); code != 0 {
		t.Fatalf("grandfathered finding exits %d, want 0", code)
	}
	// Line churn does not count as new: the ledger keys exclude lines.
	moved := old
	moved.Pos.Line = 99
	if code := verdict(&out, m, []analysis.Finding{moved}, nil, false, base); code != 0 {
		t.Fatalf("line-moved grandfathered finding exits %d, want 0", code)
	}
}

// A fixed finding passes but is reported so the ledger shrinks.
func TestVerdictFixedFindingPassesAndPrompts(t *testing.T) {
	m := fakeModule(t)
	old := finding(m, "hotalloc", "internal/core/infer.go", "allocation on hot path", 5)
	base := writeBaseline(t, m, []analysis.Finding{old})
	var out bytes.Buffer
	if code := verdict(&out, m, nil, nil, false, base); code != 0 {
		t.Fatalf("fixed finding exits %d, want 0", code)
	}
	cur := analysis.NewBaseline(m, nil)
	prev, err := analysis.LoadBaseline(base)
	if err != nil {
		t.Fatal(err)
	}
	fresh, fixed := prev.Diff(cur)
	if len(fresh) != 0 || len(fixed) != 1 {
		t.Fatalf("diff of a fixed finding = fresh %v, fixed %v; want 0 fresh, 1 fixed", fresh, fixed)
	}
	if !strings.Contains(fixed[0].String(), "hotalloc") {
		t.Fatalf("fixed entry %s does not name the analyzer", fixed[0])
	}
}

// An increased occurrence count of a grandfathered group is new.
func TestVerdictCountGrowthFails(t *testing.T) {
	m := fakeModule(t)
	old := finding(m, "errcheck", "internal/serve/pool.go", "error discarded", 10)
	twin := finding(m, "errcheck", "internal/serve/pool.go", "error discarded", 30)
	base := writeBaseline(t, m, []analysis.Finding{old})
	var out bytes.Buffer
	if code := verdict(&out, m, []analysis.Finding{old, twin}, nil, false, base); code != 1 {
		t.Fatalf("count growth exits %d, want 1", code)
	}
}

// -json renders findings and suppressions machine-readably; without a
// baseline, error findings still fail the gate.
func TestVerdictJSONOutput(t *testing.T) {
	m := fakeModule(t)
	f := finding(m, "deadlineflow", "internal/netserve/backend.go", "deadline dropped", 7)
	sup := analysis.Suppression{
		Analyzer: "goleak",
		Severity: analysis.Error,
		Pos:      token.Position{Filename: filepath.Join(m.Dir, "internal/kernels/pool.go"), Line: 3, Column: 2},
		Message:  "goroutine has no stop path",
		Reason:   "process-lifetime pump",
	}
	var out bytes.Buffer
	if code := verdict(&out, m, []analysis.Finding{f}, []analysis.Suppression{sup}, true, ""); code != 1 {
		t.Fatalf("json verdict with an error finding exits %d, want 1", code)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Analyzer != "deadlineflow" || rep.Findings[0].Line != 7 {
		t.Fatalf("findings rendered wrong: %+v", rep.Findings)
	}
	if len(rep.Suppressions) != 1 || rep.Suppressions[0].Reason != "process-lifetime pump" {
		t.Fatalf("suppressions rendered wrong: %+v", rep.Suppressions)
	}
}

// An empty run with no baseline exits clean and renders empty JSON
// arrays (not null), so downstream tooling can always range.
func TestVerdictCleanJSON(t *testing.T) {
	m := fakeModule(t)
	var out bytes.Buffer
	if code := verdict(&out, m, nil, nil, true, ""); code != 0 {
		t.Fatalf("clean run exits %d, want 0", code)
	}
	s := out.String()
	if !strings.Contains(s, `"findings": []`) || !strings.Contains(s, `"suppressions": []`) {
		t.Fatalf("clean JSON run must render empty arrays:\n%s", s)
	}
}
