// Command rtlint is the repository's static-analysis gate. With no
// flags it loads the enclosing module and runs the source analyzers
// (determinism, panicpath, errcheck, floatorder); error-severity
// findings fail the build. Plan IR is checked statically too:
//
//	rtlint                  analyze the module's source (package args ignored)
//	rtlint -plan file.plan  verify a serialized engine plan on disk
//	rtlint -plancheck       build + serialize + verify every classifier plan
//
// Findings are suppressed per line with
// `//rtlint:allow <analyzer>[, ...] -- <justification>`.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"edgeinfer/internal/analysis"
	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/planlint"
)

func main() {
	planFile := flag.String("plan", "", "verify the serialized engine plan at this path instead of analyzing source")
	planCheck := flag.Bool("plancheck", false, "build, serialize and statically verify every classifier model plan")
	flag.Parse()

	var exit int
	switch {
	case *planFile != "":
		exit = runPlanFile(*planFile)
	case *planCheck:
		exit = runPlanCheck()
	default:
		exit = runSource()
	}
	os.Exit(exit)
}

// runSource analyzes the module containing the working directory.
// Positional package patterns ("./...") are accepted for familiarity but
// the whole module is always analyzed.
func runSource() int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	analyzers := []*analysis.Analyzer{
		analysis.Determinism(analysis.DefaultRestricted),
		analysis.PanicPath(analysis.DefaultPanicRoots),
		analysis.ErrCheck(),
		analysis.FloatOrder(),
	}
	findings := analysis.RunAnalyzers(m, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if analysis.HasErrors(findings) {
		fmt.Fprintf(os.Stderr, "rtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// runPlanFile statically verifies one plan file.
func runPlanFile(path string) int {
	issues, err := core.VerifyPlanFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	return reportIssues(path, issues)
}

// runPlanCheck builds every classifier's numeric engine, serializes it
// and verifies the resulting plan bytes — the same plans the paper's
// result tables are generated from.
func runPlanCheck() int {
	names := []string{"alexnet", "googlenet", "inceptionv4", "resnet18", "vgg16"}
	sort.Strings(names)
	exit := 0
	for _, name := range names {
		g, err := models.BuildProxy(name, models.DefaultProxyOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: %v\n", name, err)
			return 2
		}
		e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: build: %v\n", name, err)
			return 2
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: save: %v\n", name, err)
			return 2
		}
		if code := reportIssues(name, core.VerifyPlanData(&buf)); code != 0 {
			exit = code
		}
	}
	if exit == 0 {
		fmt.Printf("rtlint: %d plan(s) verified clean\n", len(names))
	}
	return exit
}

func reportIssues(subject string, issues []planlint.Issue) int {
	for _, i := range issues {
		fmt.Printf("%s: %s\n", subject, i)
	}
	if planlint.HasErrors(issues) {
		return 1
	}
	return 0
}
