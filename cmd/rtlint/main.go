// Command rtlint is the repository's static-analysis gate. With no
// flags it loads the enclosing module and runs the source analyzers
// (determinism, panicpath, errcheck, floatorder, lockorder, goleak,
// hotalloc, deadlineflow); error-severity findings fail the build.
// Plan IR is checked statically too:
//
//	rtlint                        analyze the module's source
//	rtlint -json                  machine-readable findings on stdout
//	rtlint -baseline f.json       fail only on findings absent from the ledger
//	rtlint -write-baseline f.json write the current findings as the ledger
//	rtlint -plan file.plan        verify a serialized engine plan on disk
//	rtlint -plancheck             build + serialize + verify every classifier plan
//
// Findings are suppressed per line with
// `//rtlint:allow <analyzer>[, ...] -- <justification>` or the compact
// `//rt:allow <analyzer> <justification>`; every suppression is printed
// with its justification so directives stay auditable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"

	"edgeinfer/internal/analysis"
	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/planlint"
)

func main() {
	planFile := flag.String("plan", "", "verify the serialized engine plan at this path instead of analyzing source")
	planCheck := flag.Bool("plancheck", false, "build, serialize and statically verify every classifier model plan")
	jsonOut := flag.Bool("json", false, "emit findings and suppressions as JSON")
	baseline := flag.String("baseline", "", "compare findings against this ledger: new findings fail, grandfathered ones pass")
	writeBaseline := flag.String("write-baseline", "", "write the current error findings to this ledger file and exit 0")
	flag.Parse()

	var exit int
	switch {
	case *planFile != "":
		exit = runPlanFile(*planFile)
	case *planCheck:
		exit = runPlanCheck()
	default:
		exit = runSource(os.Stdout, *jsonOut, *baseline, *writeBaseline)
	}
	os.Exit(exit)
}

// sourceAnalyzers is the full analyzer suite the gate runs.
func sourceAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		analysis.Determinism(analysis.DefaultRestricted),
		analysis.PanicPath(analysis.DefaultPanicRoots),
		analysis.ErrCheck(),
		analysis.FloatOrder(),
		analysis.LockOrder(analysis.DefaultBlockingFuncs),
		analysis.GoLeak(analysis.DefaultGoroutinePackages),
		analysis.HotAlloc(),
		analysis.DeadlineFlow(),
	}
}

// runSource analyzes the module containing the working directory.
// Positional package patterns ("./...") are accepted for familiarity but
// the whole module is always analyzed.
func runSource(w io.Writer, jsonOut bool, baselinePath, writeBaselinePath string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	findings, suppressed := analysis.RunAll(m, sourceAnalyzers())
	if writeBaselinePath != "" {
		b := analysis.NewBaseline(m, findings)
		if err := b.Write(writeBaselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "rtlint:", err)
			return 2
		}
		fmt.Fprintf(w, "rtlint: wrote %d baseline entrie(s) to %s\n", len(b.Findings), writeBaselinePath)
		return 0
	}
	return verdict(w, m, findings, suppressed, jsonOut, baselinePath)
}

// jsonReport is the machine-readable output shape of `rtlint -json`.
type jsonReport struct {
	Findings     []jsonFinding     `json:"findings"`
	Suppressions []jsonSuppression `json:"suppressions"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type jsonSuppression struct {
	jsonFinding
	Reason string `json:"reason"`
}

// verdict renders the findings (text or JSON), applies the optional
// baseline ledger, and decides the exit code. Pure with respect to its
// inputs so baseline semantics are unit-testable.
func verdict(w io.Writer, m *analysis.Module, findings []analysis.Finding,
	suppressed []analysis.Suppression, jsonOut bool, baselinePath string) int {
	if jsonOut {
		rep := jsonReport{Findings: []jsonFinding{}, Suppressions: []jsonSuppression{}}
		for _, f := range findings {
			rep.Findings = append(rep.Findings, toJSONFinding(f.Analyzer, f.Severity, f.Pos, f.Message))
		}
		for _, s := range suppressed {
			rep.Suppressions = append(rep.Suppressions, jsonSuppression{
				jsonFinding: toJSONFinding(s.Analyzer, s.Severity, s.Pos, s.Message),
				Reason:      s.Reason,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "rtlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
		for _, s := range suppressed {
			fmt.Fprintln(w, s)
		}
	}
	if baselinePath == "" {
		if analysis.HasErrors(findings) {
			fmt.Fprintf(os.Stderr, "rtlint: %d finding(s)\n", len(findings))
			return 1
		}
		return 0
	}
	base, err := analysis.LoadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	fresh, fixed := base.Diff(analysis.NewBaseline(m, findings))
	for _, e := range fixed {
		fmt.Fprintf(os.Stderr, "rtlint: baseline entry fixed, shrink %s: %s\n", baselinePath, e)
	}
	if len(fresh) > 0 {
		for _, e := range fresh {
			fmt.Fprintf(os.Stderr, "rtlint: new finding (not in baseline): %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "rtlint: %d new finding group(s) vs %s\n", len(fresh), baselinePath)
		return 1
	}
	return 0
}

func toJSONFinding(analyzer string, sev analysis.Severity, pos token.Position, msg string) jsonFinding {
	return jsonFinding{
		Analyzer: analyzer,
		Severity: sev.String(),
		File:     pos.Filename,
		Line:     pos.Line,
		Column:   pos.Column,
		Message:  msg,
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// runPlanFile statically verifies one plan file.
func runPlanFile(path string) int {
	issues, err := core.VerifyPlanFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		return 2
	}
	return reportIssues(path, issues)
}

// runPlanCheck builds every classifier's numeric engine, serializes it
// and verifies the resulting plan bytes — the same plans the paper's
// result tables are generated from.
func runPlanCheck() int {
	names := []string{"alexnet", "googlenet", "inceptionv4", "resnet18", "vgg16"}
	sort.Strings(names)
	exit := 0
	for _, name := range names {
		g, err := models.BuildProxy(name, models.DefaultProxyOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: %v\n", name, err)
			return 2
		}
		e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: build: %v\n", name, err)
			return 2
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "rtlint: %s: save: %v\n", name, err)
			return 2
		}
		if code := reportIssues(name, core.VerifyPlanData(&buf)); code != 0 {
			exit = code
		}
	}
	if exit == 0 {
		fmt.Printf("rtlint: %d plan(s) verified clean\n", len(names))
	}
	return exit
}

func reportIssues(subject string, issues []planlint.Issue) int {
	for _, i := range issues {
		fmt.Printf("%s: %s\n", subject, i)
	}
	if planlint.HasErrors(issues) {
		return 1
	}
	return 0
}
