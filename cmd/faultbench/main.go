// Command faultbench measures the resilient serving stack under the
// deterministic fault-injection subsystem: top-1 error and p50/p99
// latency of answered requests versus fault rate (the degradation-chain
// sweep) and versus DVFS throttling severity, for a model on Xavier NX
// and AGX. Everything is seeded, so the emitted tables are reproducible.
//
// Usage:
//
//	faultbench                         # default sweep, prints and writes results/faulttol.txt
//	faultbench -model resnet18 -requests 100 -rates 0,0.01,0.05,0.2,0.5,1
//	faultbench -out ""                 # print only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/experiments"
	"edgeinfer/internal/models"
)

func main() {
	model := flag.String("model", "resnet18", "model to serve (must have a numeric proxy)")
	ratesArg := flag.String("rates", "0,0.01,0.05,0.2,0.5,1", "comma-separated fault rates to sweep")
	requests := flag.Int("requests", 100, "requests per sweep point")
	out := flag.String("out", "results/faulttol.txt", "also write the tables to this file (empty disables)")
	flag.Parse()

	if !models.HasProxy(*model) {
		fmt.Fprintf(os.Stderr, "faultbench: no numeric proxy for %q (need one of the classification models)\n", *model)
		os.Exit(2)
	}
	var rates []float64
	for _, s := range strings.Split(*ratesArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "faultbench: bad rate %q\n", s)
			os.Exit(2)
		}
		rates = append(rates, v)
	}

	lab := experiments.NewLab(experiments.Default())
	faultText, err := lab.RenderFaultToleranceFor(*model, rates, *requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultbench:", err)
		os.Exit(1)
	}
	throttleText, err := lab.RenderThrottleSweep()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultbench:", err)
		os.Exit(1)
	}
	text := faultText + "\n" + throttleText
	fmt.Println(text)

	if *out != "" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "faultbench:", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faultbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
