// Command edgeprof is the measurement tool of the simulator: the
// nvprof-like kernel profiler (summary and trace modes) and the
// tegrastats-like utilization monitor, driven against engine runs.
//
// Usage:
//
//	edgeprof -model pednet -platform NX                 # nvprof summary
//	edgeprof -model pednet -platform NX -trace          # GPU trace mode
//	edgeprof -model tiny-yolov3 -platform AGX -tegrastats -threads 36
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/profiler"
)

func main() {
	model := flag.String("model", "", "zoo model name")
	platform := flag.String("platform", "NX", "platform: NX or AGX")
	clock := flag.Float64("clock", 0, "GPU clock MHz (0 = paper latency clock)")
	runs := flag.Int("runs", 10, "profiled runs for the summary")
	trace := flag.Bool("trace", false, "GPU-trace mode (single run, every launch)")
	chrome := flag.String("chrome", "", "write a chrome://tracing JSON timeline to this path")
	tegra := flag.Bool("tegrastats", false, "print a tegrastats sample instead of profiling")
	threads := flag.Int("threads", 1, "concurrent inference threads for -tegrastats")
	buildID := flag.Int("build", 1, "engine build id")
	flag.Parse()

	if *model == "" {
		fmt.Fprintln(os.Stderr, "edgeprof: -model required (try: edgeprof -model pednet)")
		os.Exit(2)
	}
	spec, err := gpusim.ByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeprof:", err)
		os.Exit(2)
	}
	g, err := models.Build(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeprof:", err)
		os.Exit(1)
	}
	e, err := core.Build(g, core.DefaultConfig(spec, *buildID))
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeprof:", err)
		os.Exit(1)
	}
	clk := *clock
	if clk == 0 {
		clk = gpusim.PaperLatencyClock(spec)
	}
	if *tegra {
		clk = gpusim.PaperMaxClock(spec)
	}
	dev := gpusim.NewDevice(spec, clk)

	switch {
	case *chrome != "":
		r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
		doc, err := profiler.ChromeTrace(e.Key(), r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeprof:", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*chrome, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "edgeprof:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing)\n", len(r.Kernels)+1, *chrome)
	case *tegra:
		load := e.StreamLoad(dev)
		sample := profiler.Tegrastats(dev, load, *threads)
		fmt.Println(sample.Render())
		fmt.Printf("(per-thread FPS %.1f; platform saturates at %d threads)\n",
			gpusim.ThreadFPS(dev, load, *threads), gpusim.SaturationThreads(dev, load))
	case *trace:
		r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true})
		fmt.Print(profiler.Trace(r))
	default:
		var results []core.RunResult
		for i := 0; i < *runs; i++ {
			results = append(results, e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, Profile: true, RunIndex: i}))
		}
		fmt.Print(profiler.Summarize(results...).Render())
	}
}
