// Command deviceq prints the simulated platforms in the style of the
// CUDA deviceQuery utility the paper uses to populate Table I.
//
// Usage:
//
//	deviceq            # both platforms
//	deviceq NX         # one platform
package main

import (
	"fmt"
	"os"

	"edgeinfer/internal/gpusim"
)

func main() {
	if len(os.Args) > 1 {
		spec, err := gpusim.ByName(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(spec.DeviceQuery())
		return
	}
	for _, spec := range gpusim.Platforms() {
		fmt.Println(spec.DeviceQuery())
		fmt.Println()
	}
}
