// Command chaosbench soaks the self-healing replica fleet under seeded
// replica-scoped faults: for each scenario (sustained latency inflation,
// a stuck kernel, silent output corruption, all at once) one replica of
// a three-replica quorum fleet is degraded and the supervisor's response
// is tabulated — detections, quarantines, background rebuilds through
// the shared timing cache, canary-validated readmissions, and wrong-
// answer escapes. Everything is seeded, so the table and the transition
// transcripts are byte-identical across runs.
//
// Usage:
//
//	chaosbench                          # default soak, prints and writes results/chaos.txt
//	chaosbench -model resnet18 -requests 60
//	chaosbench -out ""                  # print only
//	chaosbench -smoke                   # CI gate: exit non-zero on any escape or leaked quarantine
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/experiments"
	"edgeinfer/internal/models"
)

func main() {
	model := flag.String("model", "resnet18", "model to serve (must have a numeric proxy)")
	requests := flag.Int("requests", 60, "requests per scenario")
	out := flag.String("out", "results/chaos.txt", "also write the table to this file (empty disables)")
	smoke := flag.Bool("smoke", false, "CI gate: fail on wrong-answer escapes or leaked quarantines")
	flag.Parse()

	if !models.HasProxy(*model) {
		fmt.Fprintf(os.Stderr, "chaosbench: no numeric proxy for %q (need one of the classification models)\n", *model)
		os.Exit(2)
	}

	lab := experiments.NewLab(experiments.Default())
	rows, err := lab.ChaosSoak(*model, *requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
	text, err := lab.RenderChaosSoakFor(*model, *requests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
	fmt.Println(text)

	if *out != "" {
		if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *smoke {
		failed := false
		for _, r := range rows {
			if r.Escapes != 0 {
				fmt.Fprintf(os.Stderr, "chaosbench: FAIL scenario %s: %d wrong-answer escapes\n", r.Scenario, r.Escapes)
				failed = true
			}
			if r.ActiveEnd != 3 {
				fmt.Fprintf(os.Stderr, "chaosbench: FAIL scenario %s: %d active replicas at soak end (leaked quarantine)\n", r.Scenario, r.ActiveEnd)
				failed = true
			}
			if r.Scenario != "none" && (r.Quarantines == 0 || r.Readmissions == 0) {
				fmt.Fprintf(os.Stderr, "chaosbench: FAIL scenario %s: healing lifecycle incomplete (%d quarantines, %d readmissions)\n",
					r.Scenario, r.Quarantines, r.Readmissions)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("chaos smoke: ok (zero escapes, zero leaked quarantines)")
	}
}
