// Command clusterbench soaks the partitioned pipeline under the
// cluster chaos plan: a heterogeneous NX/AGX pipeline with a standby
// node streams frames while a mid-stream stage kill, probabilistic link
// noise, and a late restart play out. The run is fully seeded, so the
// verdict sequence, supervisor transcript, and fault counters are
// byte-identical across invocations.
//
// The smoke gate checks the robustness contract end to end: a fault-
// free baseline and the chaos run must answer with bit-identical
// outputs for every answered frame, no frame may be lost silently
// (answered + shed == frames), the stage kill must be detected and
// failed over within a bounded number of frames, and the partition
// choice plus recovery metrics land on stdout as a benchjson line for
// BENCH_cluster.json.
//
// Usage:
//
//	clusterbench                       # default soak, prints the line and a summary
//	clusterbench -frames 120 -crashFrame 30
//	clusterbench -smoke                # CI gate: exit non-zero on any violation
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"edgeinfer/internal/cluster"
	"edgeinfer/internal/core"
	"edgeinfer/internal/faults"
	"edgeinfer/internal/fixrand"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

func main() {
	model := flag.String("model", "resnet18", "model to stream (must have a numeric proxy)")
	framesN := flag.Int("frames", 60, "frames to stream")
	crashFrame := flag.Int("crashFrame", 15, "frame at which the victim stage's node dies")
	seed := flag.String("seed", "clusterbench", "fault stream seed")
	name := flag.String("name", "BenchmarkClusterPipeline", "benchmark result line name")
	recoveryBound := flag.Int("recoveryBound", 8, "smoke: max frames from detection to first clean answer")
	smoke := flag.Bool("smoke", false, "CI gate: fail on lost frames, wrong answers, or slow recovery")
	verbose := flag.Bool("v", false, "print the supervisor transcript")
	flag.Parse()

	if err := run(*model, *framesN, *crashFrame, *seed, *name, *recoveryBound, *smoke, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

// topology is the soak's cluster: a heterogeneous pipeline with one
// standby, joined by an interconnect fast enough that partitioning the
// proxy's microsecond-scale compute pays (the partitioner itself
// decides; gigabit would correctly collapse to one stage and leave
// nothing to kill).
func topology() (nodes, standby []cluster.Node, links []gpusim.Link) {
	nodes = []cluster.Node{cluster.NX("nx-0"), cluster.NX("nx-1"), cluster.AGX("agx-2")}
	standby = []cluster.Node{cluster.NX("nx-standby")}
	links = cluster.UniformLinks(len(nodes)-1, gpusim.Link{BandwidthBps: 1e11, LatencySec: 1e-7})
	return nodes, standby, links
}

func run(model string, framesN, crashFrame int, seed, name string, recoveryBound int, smoke, verbose bool) error {
	if !models.HasProxy(model) {
		return fmt.Errorf("no numeric proxy for %q (need one of the classification models)", model)
	}
	g, err := models.BuildProxy(model, models.DefaultProxyOptions())
	if err != nil {
		return err
	}
	eng, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		return err
	}
	xs := inputs(seed, framesN)
	nodes, standby, links := topology()

	// Fault-free baseline: the bit-identity oracle.
	base, err := cluster.New(cluster.PipelineConfig{Engine: eng, Nodes: nodes, Standby: standby, Links: links})
	if err != nil {
		return err
	}
	baseRep, err := base.Run(xs)
	if err != nil {
		return err
	}

	// Chaos run: mid-stream stage kill plus link noise, same topology.
	crashStage := 0
	if len(base.Partition().Stages) > 1 {
		crashStage = 1
	}
	plan := faults.ClusterChaos(seed, crashStage, crashFrame)
	chaos, err := cluster.New(cluster.PipelineConfig{
		Engine: eng, Nodes: nodes, Standby: standby, Links: links,
		Injector: plan.New("soak"),
	})
	if err != nil {
		return err
	}
	rep, err := chaos.Run(xs)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "clusterbench: %s over %d frames: partition %s\n", model, framesN, rep.Partition)
	fmt.Fprintf(os.Stderr, "clusterbench: answered %d, shed %d, lost %d | failovers %d, merges %d | crash detected frame %d, recovered in %d frames (%.3gms)\n",
		rep.Answered, rep.Shed, rep.Lost, rep.Failovers, rep.Merges, rep.CrashDetectFrame, rep.RecoveryFrames, rep.RecoverySec*1e3)
	fmt.Fprintf(os.Stderr, "clusterbench: faults injected: %s\n", rep.Counters)
	if verbose {
		for _, line := range rep.Transcript {
			fmt.Fprintln(os.Stderr, "clusterbench:", line)
		}
	}

	wrong := wrongAnswers(baseRep, rep)

	// The benchjson line: mean answered latency as ns/op; the partition
	// choice (cut positions) and recovery metrics as custom units.
	var mean float64
	for _, l := range rep.Latencies {
		mean += l
	}
	if len(rep.Latencies) > 0 {
		mean /= float64(len(rep.Latencies))
	}
	p := metrics.Percentiles(rep.Latencies, 50, 99)
	fmt.Printf("%s %d %.0f ns/op %.0f p50-ns/op %.0f p99-ns/op %.0f recovery-ns %d recovery-frames %d frames-lost %d shed %d failovers %d merges %d wrong-answers %d stages",
		name, rep.Answered, mean*1e9, p[0]*1e9, p[1]*1e9, rep.RecoverySec*1e9,
		rep.RecoveryFrames, rep.Lost, rep.Shed, rep.Failovers, rep.Merges, wrong, len(rep.Partition.Stages))
	for i, c := range rep.Partition.Cuts() {
		fmt.Printf(" %d cut-%d", c, i+1)
	}
	fmt.Println()

	if !smoke {
		return nil
	}
	var fails []string
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	gate(baseRep.Lost == 0 && baseRep.Shed == 0 && baseRep.Answered == framesN,
		"fault-free baseline dropped frames: answered %d shed %d lost %d", baseRep.Answered, baseRep.Shed, baseRep.Lost)
	gate(rep.Lost == 0, "%d frames lost silently", rep.Lost)
	gate(rep.Answered+rep.Shed == framesN, "answered %d + shed %d != %d frames", rep.Answered, rep.Shed, framesN)
	gate(rep.CrashDetectFrame >= 0, "stage kill was never detected")
	gate(rep.Failovers+rep.Merges >= 1, "no failover after the stage kill")
	gate(rep.CrashDetectFrame < 0 || rep.RecoveryFrames <= recoveryBound,
		"recovery took %d frames, bound is %d", rep.RecoveryFrames, recoveryBound)
	gate(wrong == 0, "%d answered frames differ from the fault-free baseline", wrong)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "clusterbench: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cluster smoke: ok (zero lost, bit-identical answers, bounded recovery)")
	return nil
}

// wrongAnswers counts chaos-run frames whose outputs differ bitwise
// from the fault-free baseline — the count the smoke gate pins to zero.
func wrongAnswers(base, rep *cluster.Report) int {
	wrong := 0
	for f, v := range rep.Frames {
		if v.Shed || v.Outputs == nil {
			continue
		}
		want := base.Frames[f].Outputs
		if len(v.Outputs) != len(want) {
			wrong++
			continue
		}
		for oi := range want {
			if !sameBits(v.Outputs[oi], want[oi]) {
				wrong++
				break
			}
		}
	}
	return wrong
}

func sameBits(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

func inputs(seed string, n int) []*tensor.Tensor {
	src := fixrand.NewKeyed("clusterbench/" + seed)
	xs := make([]*tensor.Tensor, n)
	for i := range xs {
		x := tensor.New(1, 3, 32, 32)
		for j := range x.Data {
			x.Data[j] = float32(src.NormFloat64())
		}
		xs[i] = x
	}
	return xs
}
