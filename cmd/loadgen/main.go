// Command loadgen drives the netserve front-end with an open-loop
// request generator: arrivals fire on a fixed schedule regardless of how
// fast responses come back, which is what makes overload real — a closed
// loop would politely slow down instead of filling the queue. The server
// runs in-process on a loopback listener over a registry-built executor
// backend whose wall-clock service time is paced per batch, so "2x
// overload" is a configuration, not an accident of host speed.
//
// The generator mixes priorities, attaches per-request deadlines, and
// (via the seeded network fault injector) throttles some uploads to
// slow-client pace, disconnects some clients mid-request, and
// periodically multiplies arrivals into bursts. Every outcome is
// tallied; the run ends with a graceful drain and a benchjson-parseable
// result line — p50/p99/p999 latency, throughput, shed rate, and
// deadline-miss rate — for CI to archive:
//
//	go run ./cmd/loadgen -smoke | go run ./cmd/benchjson -out BENCH_serve.json
//
// -smoke is the CI gate: the run must overload (sheds observed), every
// shed must be an explicit 503 with Retry-After, every request must be
// answered (result or error — never a hang), the queue must respect its
// depth bound, and the drain must complete with nothing in flight.
//
// SIGINT/SIGTERM (or the -timeout bound) stops the generator early but
// never kills the artifact: arrivals cease, in-flight clients finish,
// the server drains, and the result line still prints — flagged with a
// trailing "1 partial" unit and with the hard smoke gates skipped, so a
// truncated CI run leaves a diffable partial measurement instead of
// nothing.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"edgeinfer/internal/faults"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/netserve"
	"edgeinfer/internal/rtctx"
	"edgeinfer/internal/serve"
	"edgeinfer/internal/tensor"
)

// pacedBackend wraps a real backend with a fixed wall-clock service time
// per batch, so the generator's arrival rate has a known capacity to
// overload: capacity = maxBatch / serve time.
type pacedBackend struct {
	netserve.Backend
	serveTime time.Duration
}

func (b *pacedBackend) ServeBatch(ctx *rtctx.Request, xs []*tensor.Tensor, runIndex int) (*netserve.BatchAnswer, error) {
	time.Sleep(b.serveTime)
	return b.Backend.ServeBatch(ctx, xs, runIndex)
}

// outcome is one request's fate as the client saw it.
type outcome struct {
	status     int  // 0 when the transport failed
	retryAfter bool // Retry-After header present
	canceled   bool // we disconnected this client on purpose
	latency    time.Duration
	miss       bool // served, but the reply flagged a deadline miss
	tight      bool // sent with a hopeless (below-WCET) deadline
}

func main() {
	model := flag.String("model", "resnet18", "model to serve (must have a numeric proxy)")
	requests := flag.Int("requests", 400, "total arrivals to generate")
	rate := flag.Float64("rate", 2000, "open-loop arrival rate, requests/second")
	highFrac := flag.Float64("high", 0.2, "fraction of requests sent high-priority")
	deadlineMS := flag.Int("deadline", 50, "per-request deadline, milliseconds")
	maxBatch := flag.Int("batch", 4, "server coalescing batch size")
	windowMS := flag.Int("window", 2, "server batch window, milliseconds")
	depth := flag.Int("depth", 64, "server queue depth bound")
	serveMS := flag.Int("serve", 4, "paced wall-clock service time per batch, milliseconds")
	seed := flag.String("seed", "loadgen", "seed for the network fault injector")
	slowRate := flag.Float64("slowRate", 0.05, "fraction of clients uploading at throttled pace")
	discRate := flag.Float64("discRate", 0.02, "fraction of clients disconnecting mid-request")
	burstEvery := flag.Int("burstEvery", 20, "every Nth tick is a burst (0 disables)")
	burstFactor := flag.Int("burstFactor", 4, "arrival multiplier on burst ticks")
	smoke := flag.Bool("smoke", false, "CI gate: overload must shed cleanly and drain must complete")
	edf := flag.Bool("edf", false, "serve with the EDF queue discipline instead of two-band FIFO")
	wcetAdm := flag.Bool("wcet", false, "enable WCET admission control")
	tightFrac := flag.Float64("tightFrac", 0, "fraction of requests sent with a hopeless below-WCET deadline")
	spread := flag.Int("spread", 1, "deadline ladder rungs: request i's deadline is deadline*(1+i%spread)")
	missGate := flag.Float64("missGate", -1, "smoke: max allowed deadline-miss fraction (<0 disables)")
	name := flag.String("name", "BenchmarkServeLoad", "benchmark result line name")
	timeout := flag.Duration("timeout", 0, "stop generating arrivals after this long and emit a partial result (0 disables)")
	flag.Parse()

	if err := run(config{
		model: *model, requests: *requests, rate: *rate, highFrac: *highFrac,
		deadline: time.Duration(*deadlineMS) * time.Millisecond,
		maxBatch: *maxBatch, window: time.Duration(*windowMS) * time.Millisecond,
		depth: *depth, serveTime: time.Duration(*serveMS) * time.Millisecond,
		seed: *seed, slowRate: *slowRate, discRate: *discRate,
		burstEvery: *burstEvery, burstFactor: *burstFactor, smoke: *smoke,
		edf: *edf, wcetAdm: *wcetAdm, tightFrac: *tightFrac, spread: *spread,
		missGate: *missGate, name: *name, timeout: *timeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	model                   string
	requests                int
	rate, highFrac          float64
	deadline                time.Duration
	maxBatch                int
	window                  time.Duration
	depth                   int
	serveTime               time.Duration
	seed                    string
	slowRate, discRate      float64
	burstEvery, burstFactor int
	smoke                   bool
	edf, wcetAdm            bool
	tightFrac               float64
	spread                  int
	missGate                float64
	name                    string
	timeout                 time.Duration
}

func run(cfg config) error {
	if !models.HasProxy(cfg.model) {
		return fmt.Errorf("no numeric proxy for %q (need one of the classification models)", cfg.model)
	}
	if cfg.rate <= 0 || cfg.requests <= 0 {
		return fmt.Errorf("rate and requests must be positive")
	}

	reg := serve.NewRegistry(gpusim.XavierNX(), nil)
	ex, err := reg.Executor(cfg.model, serve.Config{Seed: "loadgen/" + cfg.model})
	if err != nil {
		return err
	}
	eng, err := reg.ProxyEngine(cfg.model)
	if err != nil {
		return err
	}
	be := &pacedBackend{
		Backend:   netserve.NewExecutorBackend(ex, eng.Graph.InputShape),
		serveTime: cfg.serveTime,
	}
	// The certified worst-case service time of THIS deployment: the
	// engine's simulated WCET bound plus the paced wall-clock service
	// time and the batch window (client budgets arrive as wall-clock
	// headers, so the bound must cover the wall-clock path too). Tight
	// requests get half that — a budget admission can prove hopeless.
	var wcetSec float64
	var tightDeadline time.Duration
	if cfg.wcetAdm || cfg.tightFrac > 0 {
		simWCET, err := reg.WCETBound(cfg.model, 12, 0.2)
		if err != nil {
			return fmt.Errorf("WCET certification: %w", err)
		}
		wcetSec = simWCET + cfg.serveTime.Seconds() + cfg.window.Seconds()
		tightMS := int(wcetSec * 1e3 / 2)
		if tightMS < 1 {
			tightMS = 1
		}
		tightDeadline = time.Duration(tightMS) * time.Millisecond
	}
	srv, err := netserve.New(netserve.Config{
		Models:          []netserve.ModelConfig{{Name: cfg.model, Backend: be, WCETSec: wcetSec}},
		MaxBatch:        cfg.maxBatch,
		BatchWindow:     cfg.window,
		QueueDepth:      cfg.depth,
		DefaultDeadline: cfg.deadline,
		EDF:             cfg.edf,
		WCETAdmission:   cfg.wcetAdm,
	})
	if err != nil {
		return err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/v1/models/%s/infer", addr, cfg.model)

	inj := faults.NetPlan{
		Seed:           cfg.seed,
		SlowClientRate: cfg.slowRate,
		SlowChunkBytes: 8,
		SlowChunkDelay: 200 * time.Microsecond,
		DisconnectRate: cfg.discRate,
		BurstEvery:     cfg.burstEvery,
		BurstFactor:    cfg.burstFactor,
	}.NewNet(cfg.model)

	// Interruption sources: SIGINT/SIGTERM and the -timeout bound. Either
	// one stops the generator between arrival slots; in-flight clients
	// still finish and the drain still runs, so the run always ends with
	// a (possibly partial) result line.
	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	var timeoutC <-chan time.Time
	if cfg.timeout > 0 {
		tm := time.NewTimer(cfg.timeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	partial := ""

	// Open loop: one tick per arrival slot; burst ticks multiply the
	// arrivals in that slot. Nobody waits for a response before the next
	// arrival fires.
	outcomes := make([]outcome, 0, cfg.requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.rate)
	highPermille := int(cfg.highFrac * 1000)
	tightPermille := int(cfg.tightFrac * 1000)
	start := time.Now()
	issued := 0
arrivals:
	for tick := 1; issued < cfg.requests; tick++ {
		// Sleep to the tick's absolute slot, not a relative interval: when
		// the sleep overshoots (coarse timer granularity), later ticks fire
		// back-to-back until the schedule catches up, so the asked-for rate
		// is delivered on average instead of silently eroding.
		if d := time.Until(start.Add(time.Duration(tick) * interval)); d > 0 {
			slot := time.NewTimer(d)
			select {
			case <-stop:
				slot.Stop()
				partial = "interrupt"
				break arrivals
			case <-timeoutC:
				slot.Stop()
				partial = "timeout"
				break arrivals
			case <-slot.C:
			}
		} else {
			select {
			case <-stop:
				partial = "interrupt"
				break arrivals
			case <-timeoutC:
				partial = "timeout"
				break arrivals
			default:
			}
		}
		n := inj.Burst(tick)
		for j := 0; j < n && issued < cfg.requests; j++ {
			idx := issued
			issued++
			chunk, delay, slow := inj.SlowClient()
			disconnect := inj.Disconnect()
			// Deterministic deadline mix: a tightFrac slice of arrivals
			// carries the hopeless below-WCET deadline; everyone else
			// climbs a spread-rung ladder (deadline heterogeneity is what
			// gives EDF reordering something to exploit).
			deadline := cfg.deadline
			if cfg.spread > 1 {
				deadline = cfg.deadline * time.Duration(1+idx%cfg.spread)
			}
			// Stride pattern, not a prefix: idx%1000 < permille would make
			// the first quarter of a short run all-tight.
			tight := tightPermille > 0 && idx*tightPermille%1000 < tightPermille
			if tight {
				deadline = tightDeadline
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				o := fire(url, idx, idx%1000 < highPermille, deadline, slow, chunk, delay, disconnect)
				o.tight = tight
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
		}
	}

	// Every client must come back — a hang here is the deadlock the
	// smoke gate exists to catch.
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	select {
	case <-clientsDone:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("deadlock: clients still waiting 60s after the last arrival")
	}
	elapsed := time.Since(start)

	// Graceful exit: the drain must flush whatever the overload left
	// queued and come back with nothing in flight.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain did not complete: %w", err)
	}
	st := srv.Stats()
	ms := st.Models[cfg.model]

	return report(cfg, outcomes, elapsed, ms, st, inj, partial)
}

// fire issues one request and classifies the outcome.
func fire(url string, idx int, high bool, deadline time.Duration, slow bool, chunk int, delay time.Duration, disconnect bool) outcome {
	body := fmt.Sprintf(`{"input":%d}`, idx)
	var rd io.Reader = bytes.NewReader([]byte(body))
	if slow {
		rd = faults.Throttle(rd, chunk, delay)
	}
	ctx := context.Background()
	if disconnect {
		// A deliberately impatient client: hang up partway through the
		// request's deadline budget.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline/2)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return outcome{canceled: disconnect}
	}
	if high {
		req.Header.Set("X-Priority", "high")
	}
	req.Header.Set("X-Deadline-Ms", fmt.Sprint(int(deadline/time.Millisecond)))
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return outcome{canceled: disconnect && errors.Is(err, context.DeadlineExceeded)}
	}
	defer resp.Body.Close()
	o := outcome{
		status:     resp.StatusCode,
		retryAfter: resp.Header.Get("Retry-After") != "",
		latency:    time.Since(t0),
	}
	if resp.StatusCode == http.StatusOK {
		var rep netserve.InferReply
		if derr := readJSON(resp.Body, &rep); derr == nil {
			o.miss = rep.DeadlineMiss
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return o
}

func readJSON(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// report prints the human summary to stderr and the benchjson-parseable
// result line to stdout, then applies the smoke gates. A non-empty
// partial reason marks a truncated run: the line still prints (with the
// partial unit set to 1) but the hard smoke gates are skipped — a
// truncated run proves nothing about overload behavior and must not
// fail CI for it, yet the measurement that did happen stays archived.
func report(cfg config, outcomes []outcome, elapsed time.Duration, ms netserve.ModelStats, st netserve.ServerStats, inj *faults.NetInjector, partial string) error {
	var served, shed, expired, canceled, transport, other int
	var tightMisses, tightTotal int
	var latencies []float64
	misses := 0
	for _, o := range outcomes {
		if o.tight {
			tightTotal++
		}
		switch {
		case o.status == http.StatusOK:
			served++
			latencies = append(latencies, o.latency.Seconds())
			if o.miss {
				misses++
				if o.tight {
					tightMisses++
				}
			}
		case o.status == http.StatusServiceUnavailable:
			shed++
		case o.status == http.StatusGatewayTimeout:
			expired++
			misses++
			if o.tight {
				tightMisses++
			}
		case o.canceled:
			canceled++
		case o.status == 0:
			transport++
		default:
			other++
		}
	}
	answered := served + shed + expired
	total := len(outcomes)
	den := float64(total)
	if den == 0 {
		den = 1 // an interrupted run may have zero arrivals; keep the line finite
	}
	p := metrics.Percentiles(latencies, 50, 99, 99.9)
	rps := float64(served) / elapsed.Seconds()
	shedPct := 100 * float64(shed) / den
	missFrac := float64(misses) / den
	missPct := 100 * missFrac

	fmt.Fprintf(os.Stderr,
		"loadgen: %d arrivals over %v (%.0f/s asked): %d served, %d shed, %d expired, %d disconnected, %d transport, %d other\n",
		total, elapsed.Round(time.Millisecond), cfg.rate, served, shed, expired, canceled, transport, other)
	fmt.Fprintf(os.Stderr,
		"loadgen: latency p50 %.2fms p99 %.2fms p999 %.2fms | %.0f served/s | shed %.1f%% | miss %.1f%% | max queue depth %d/%d\n",
		p[0]*1e3, p[1]*1e3, p[2]*1e3, rps, shedPct, missPct, ms.MaxQueueDepth, cfg.depth)
	if cfg.edf || cfg.wcetAdm || tightTotal > 0 {
		fmt.Fprintf(os.Stderr,
			"loadgen: discipline edf=%v wcet=%v: %d/%d tight requests missed, %d wcet-shed, %d edf-evictions\n",
			cfg.edf, cfg.wcetAdm, tightMisses, tightTotal, ms.WCETShed, ms.EDFEvictions)
	}
	fmt.Fprintf(os.Stderr, "loadgen: faults injected: %s\n", inj.Counters())

	partialFlag := 0
	if partial != "" {
		partialFlag = 1
		fmt.Fprintf(os.Stderr, "loadgen: partial run (%s): stopped after %d of %d arrivals\n",
			partial, total, cfg.requests)
	}

	// The benchjson line: p50 as ns/op, everything else as custom units.
	fmt.Printf("%s %d %.0f ns/op %.0f p99-ns/op %.0f p999-ns/op %.2f req/s %.2f shed-%% %.2f miss-%% %.4f deadline_miss_rate %d edf_evictions %d wcet_shed %d max-depth %d partial\n",
		cfg.name, served, p[0]*1e9, p[1]*1e9, p[2]*1e9, rps, shedPct, missPct, missFrac, ms.EDFEvictions, ms.WCETShed, ms.MaxQueueDepth, partialFlag)

	if !cfg.smoke {
		return nil
	}
	if partial != "" {
		fmt.Fprintf(os.Stderr, "loadgen: smoke gates skipped: %s run is partial, the artifact above is flagged\n", partial)
		return nil
	}
	var fails []string
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	gate(served > 0, "nothing was served")
	gate(shed > 0, "overload produced zero sheds — the run did not overload")
	gate(other == 0, "%d responses outside {200, 503, 504}", other)
	gate(transport == 0, "%d transport failures on live clients", transport)
	gate(answered+canceled == total, "%d of %d requests unaccounted for", total-answered-canceled, total)
	gate(ms.MaxQueueDepth <= cfg.depth, "queue depth %d exceeded bound %d", ms.MaxQueueDepth, cfg.depth)
	gate(st.Models[cfg.model].QueueDepth == 0, "drain left %d requests queued", st.Models[cfg.model].QueueDepth)
	gate(st.Draining, "server not marked draining after drain")
	if cfg.missGate >= 0 {
		gate(missFrac <= cfg.missGate, "deadline-miss rate %.4f exceeded gate %.4f", missFrac, cfg.missGate)
	}
	if cfg.wcetAdm && cfg.tightFrac > 0 {
		gate(ms.WCETShed > 0, "WCET admission never engaged despite %d tight arrivals", tightTotal)
	}
	for _, o := range outcomes {
		if o.status == http.StatusServiceUnavailable && !o.retryAfter {
			fails = append(fails, "a 503 shed arrived without Retry-After")
			break
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL:", f)
		}
		return fmt.Errorf("smoke gate failed (%d violations)", len(fails))
	}
	fmt.Fprintln(os.Stderr, "loadgen: smoke ok (overload shed cleanly, every request answered, drain complete)")
	return nil
}
