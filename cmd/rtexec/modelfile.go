package main

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"edgeinfer/internal/atomicfile"
	"edgeinfer/internal/frameworks"
)

// Framework model files on disk: a tiny container holding the format
// tag, the architecture text and the weight payload.

const modelMagic = "EDGEMDL1"

// writeModel serializes a frameworks.Model to path.
func writeModel(path string, m frameworks.Model) error {
	var b bytes.Buffer
	b.WriteString(modelMagic)
	writeChunk := func(data []byte) {
		binary.Write(&b, binary.LittleEndian, uint32(len(data)))
		b.Write(data)
	}
	writeChunk([]byte(m.Format))
	writeChunk(m.Arch)
	writeChunk(m.Weights)
	return writeFile(path, b.Bytes())
}

// readModel parses a container written by writeModel.
func readModel(data []byte) (frameworks.Model, error) {
	if len(data) < len(modelMagic) || string(data[:len(modelMagic)]) != modelMagic {
		return frameworks.Model{}, fmt.Errorf("not an edgeinfer model file")
	}
	rest := data[len(modelMagic):]
	next := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("truncated model file")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if len(rest) < int(n) {
			return nil, fmt.Errorf("truncated model chunk")
		}
		chunk := rest[:n]
		rest = rest[n:]
		return chunk, nil
	}
	format, err := next()
	if err != nil {
		return frameworks.Model{}, err
	}
	arch, err := next()
	if err != nil {
		return frameworks.Model{}, err
	}
	weights, err := next()
	if err != nil {
		return frameworks.Model{}, err
	}
	return frameworks.Model{Format: frameworks.Format(format), Arch: arch, Weights: weights}, nil
}

// writeFile writes artifacts crash-safely (temp file + rename) with
// conventional permissions.
func writeFile(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, 0o644)
}
