// Command rtexec is the trtexec-like workbench of the simulator: it
// builds engines from zoo models (or framework files exported by this
// tool), saves/loads serialized plans, and times inference on a chosen
// platform.
//
// Usage:
//
//	rtexec -model resnet18 -platform NX                      # build + time
//	rtexec -model resnet18 -platform NX -save resnet18.plan  # build + save
//	rtexec -load resnet18.plan -run AGX                      # cross-platform run
//	rtexec -model googlenet -platform AGX -export caffe -o googlenet.model
//	rtexec -import googlenet.model -platform NX              # framework import
//	rtexec -model pednet -platform NX -runs 10 -profile      # stats + profile
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeinfer/internal/core"
	"edgeinfer/internal/frameworks"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/graph"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/profiler"
	"edgeinfer/internal/tensor"
)

func main() {
	model := flag.String("model", "", "zoo model name (see -list)")
	list := flag.Bool("list", false, "list zoo models")
	platform := flag.String("platform", "NX", "build platform: NX or AGX")
	run := flag.String("run", "", "run platform (default: build platform)")
	clock := flag.Float64("clock", 0, "GPU clock MHz (0 = paper latency clock)")
	buildID := flag.Int("build", 1, "build id (engines with different ids may differ)")
	precision := flag.String("precision", "fp16", "engine precision: fp32, fp16 or int8")
	runs := flag.Int("runs", 10, "timed runs")
	prof := flag.Bool("profile", false, "attach the nvprof-like profiler and print a summary")
	memcpy := flag.Bool("memcpy", true, "include engine H2D copy in timing")
	save := flag.String("save", "", "save the built engine plan to a file")
	load := flag.String("load", "", "load an engine plan instead of building")
	export := flag.String("export", "", "export the model in a framework format (caffe|tensorflow|darknet|pytorch)")
	importPath := flag.String("import", "", "import a framework model file (written by -export)")
	out := flag.String("o", "model.out", "output path for -export")
	dot := flag.String("dot", "", "write a Graphviz rendering of the model graph to this path")
	tcPath := flag.String("timingCache", "", "timing-cache file: loaded if present, saved after the build (warm builds skip tactic re-timing)")
	flag.Parse()

	if *list {
		for _, name := range models.List() {
			fmt.Println(name)
		}
		return
	}

	var e *core.Engine
	var g *graph.Graph
	switch {
	case *load != "":
		var err error
		e, err = core.LoadFile(*load)
		fail(err)
		fmt.Printf("loaded engine: %s (built on %s, build %d, %d kernels, %.2f MB)\n",
			e.ModelName, e.Platform, e.BuildID, len(e.Launches), float64(e.SizeBytes())/1e6)
	case *importPath != "":
		g = importModel(*importPath)
	case *model != "":
		var err error
		g, err = models.Build(*model)
		fail(err)
	default:
		fmt.Fprintln(os.Stderr, "rtexec: need -model, -load or -import (see -h)")
		os.Exit(2)
	}

	if *dot != "" && g != nil {
		fail(writeFile(*dot, []byte(g.DOT())))
		fmt.Printf("wrote graph of %s to %s (render with: dot -Tsvg %s)\n", g.Name, *dot, *dot)
		return
	}

	if *export != "" {
		m, err := frameworks.Export(g, frameworks.Format(*export))
		fail(err)
		fail(writeModel(*out, m))
		fmt.Printf("exported %s as %s to %s (%d arch bytes, %d weight bytes)\n",
			g.Name, *export, *out, len(m.Arch), len(m.Weights))
		return
	}

	spec, err := gpusim.ByName(*platform)
	fail(err)
	if e == nil {
		cfg := core.DefaultConfig(spec, *buildID)
		switch *precision {
		case "fp32":
			cfg.Precision = tensor.FP32
		case "fp16":
			cfg.Precision = tensor.FP16
		case "int8":
			cfg.Precision = tensor.INT8
		default:
			fail(fmt.Errorf("unknown precision %q", *precision))
		}
		var cache *core.TimingCache
		if *tcPath != "" {
			if _, statErr := os.Stat(*tcPath); statErr == nil {
				cache, err = core.LoadTimingCacheFile(*tcPath)
				fail(err)
				fmt.Printf("loaded timing cache %s (%d entries)\n", *tcPath, cache.Len())
			} else {
				cache = core.NewTimingCache()
			}
			cfg.TimingCache = cache
		}
		e, err = core.Build(g, cfg)
		fail(err)
		fmt.Printf("built engine: %s on %s (build %d)\n", e.ModelName, e.Platform, e.BuildID)
		fmt.Printf("  optimization: %d layers removed, %d fused, %d horizontally merged\n",
			e.RemovedLayers, e.FusedLayers, e.MergedLaunches)
		fmt.Printf("  plan: %d kernel launches, %.2f MB serialized\n", len(e.Launches), float64(e.SizeBytes())/1e6)
		if rep := e.Report; rep != nil && cache != nil {
			kind := "cold"
			if rep.WarmBuild {
				kind = "warm"
			}
			fmt.Printf("  timing cache: %s build, %d hits / %d misses, %.1f ms tactic-timing cost\n",
				kind, rep.CacheHits, rep.CacheMisses, rep.TuneCostSec*1e3)
			fail(cache.SaveFile(*tcPath))
			fmt.Printf("saved timing cache to %s (%d entries)\n", *tcPath, cache.Len())
		}
	}
	if *save != "" {
		fail(e.SaveFile(*save))
		fmt.Printf("saved plan to %s\n", *save)
	}

	runSpec := spec
	if *run != "" {
		runSpec, err = gpusim.ByName(*run)
		fail(err)
	}
	clk := *clock
	if clk == 0 {
		clk = gpusim.PaperLatencyClock(runSpec)
	}
	dev := gpusim.NewDevice(runSpec, clk)

	var results []core.RunResult
	secs := make([]float64, *runs)
	for i := 0; i < *runs; i++ {
		r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: *memcpy, Profile: *prof, RunIndex: i})
		secs[i] = r.LatencySec
		results = append(results, r)
	}
	stats := metrics.Latencies(secs)
	fmt.Printf("ran %d inferences on %s @ %.0f MHz: %.2f ms mean (std %.2f, min %.2f, max %.2f)\n",
		stats.N, runSpec.Short(), clk, stats.MeanMS, stats.StdMS, stats.MinMS, stats.MaxMS)
	fmt.Printf("throughput: %.1f FPS\n", metrics.FPS(stats.MeanMS/1e3))
	if *prof {
		fmt.Println(profiler.Summarize(results...).Render())
	}
}

func importModel(path string) *graph.Graph {
	data, err := os.ReadFile(path)
	fail(err)
	m, err := readModel(data)
	fail(err)
	g, err := frameworks.Import(m)
	fail(err)
	fmt.Printf("imported %s model %s (%d layers)\n", m.Format, g.Name, len(g.Layers))
	return g
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtexec:", err)
		os.Exit(1)
	}
}
