package main

import (
	"os"
	"path/filepath"
	"testing"

	"edgeinfer/internal/frameworks"
	"edgeinfer/internal/models"
)

func TestModelFileRoundTrip(t *testing.T) {
	g := models.MustBuild("tiny-yolov3")
	m, err := frameworks.Export(g, frameworks.Darknet)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ty.model")
	if err := writeModel(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := readModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Format != frameworks.Darknet {
		t.Fatalf("format %q", back.Format)
	}
	if string(back.Arch) != string(m.Arch) {
		t.Fatal("arch lost")
	}
	if len(back.Weights) != len(m.Weights) {
		t.Fatal("weights lost")
	}
	// And it imports back into a graph.
	g2, err := frameworks.Import(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Layers) != len(g.Layers) {
		t.Fatalf("layers %d vs %d", len(g2.Layers), len(g.Layers))
	}
}

func TestReadModelRejectsCorruption(t *testing.T) {
	g := models.MustBuild("mtcnn")
	m, err := frameworks.Export(g, frameworks.Caffe)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.model")
	if err := writeModel(path, m); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// wrong magic
	if _, err := readModel([]byte("NOTMAGIC" + string(data[8:]))); err == nil {
		t.Fatal("bad magic accepted")
	}
	// truncations at several prefixes must error, never panic
	for _, n := range []int{0, 4, 8, 10, 20, len(data) / 2, len(data) - 1} {
		if n > len(data) {
			continue
		}
		if _, err := readModel(data[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}
