// ADAS: the paper's advanced-driver-assistance scenario (§VI-A). A
// pedestrian-detection inference must reach the braking subsystem before
// a hard deadline. The example certifies the detection stage's WCET
// across independently rebuilt engines of the same model (internal/wcet)
// and shows the paper's Table XVI hazards: certification does not
// survive an engine rebuild, and an "upgrade" to the bigger platform can
// make latency worse.
package main

import (
	"fmt"
	"log"

	"edgeinfer/internal/core"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
	"edgeinfer/internal/wcet"
)

const (
	runs       = 200
	deadlineMS = 25.0 // camera-to-brake budget for the detection stage
	margin     = 0.10 // certification safety margin over observed max
)

func main() {
	g := models.MustBuild("pednet")
	fmt.Printf("ADAS pedestrian detection: %s, %.1f GFLOPs per frame, %.0f ms deadline\n\n",
		g.Name, float64(g.TotalFLOPs())/1e9, deadlineMS)

	// WCET certification across three engine rebuilds on the NX unit.
	nx := gpusim.NewDevice(gpusim.XavierNX(), gpusim.PaperLatencyClock(gpusim.XavierNX()))
	res, err := wcet.CheckRebuilds(func(id int) (*core.Engine, error) {
		return core.Build(g, core.DefaultConfig(gpusim.XavierNX(), id))
	}, nx, 3, runs, deadlineMS/1e3, margin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WCET certification across engine rebuilds (same trained model, same platform):")
	for i, c := range res.Certs {
		fmt.Printf("  engine %d: mean %.2f ms, p99 %.2f ms, WCET(+%.0f%%) %.2f ms -> certifies: %v\n",
			i+1, c.Profile.MeanSec*1e3, c.Profile.P99Sec*1e3, margin*100, c.WCET*1e3, c.Passes)
	}
	fmt.Printf("  WCET spread across rebuilds: %.2f ms; all builds certify: %v\n", res.WCETSpreadMS, res.AllPass)
	if res.AnyPass && !res.AllPass {
		fmt.Println("  -> HAZARD: certification depends on WHICH rebuild shipped (paper Table XVI).")
	}
	fmt.Println("  -> certify the serialized plan, not the model; redeploy only certified binaries")

	// The upgrade trap: move the certified NX plan to the bigger AGX.
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		log.Fatal(err)
	}
	agx := gpusim.NewDevice(gpusim.XavierAGX(), gpusim.PaperLatencyClock(gpusim.XavierAGX()))
	nxProf := wcet.Measure(e, nx, runs)
	agxProf := wcet.Measure(e, agx, runs)
	fmt.Println("\nplatform upgrade check (same engine binary):")
	fmt.Printf("  on NX : mean %.2f ms, WCET %.2f ms, miss rate %.1f%%\n",
		nxProf.MeanSec*1e3, nxProf.WCETSec(margin)*1e3, 100*nxProf.MissRate(deadlineMS/1e3))
	fmt.Printf("  on AGX: mean %.2f ms, WCET %.2f ms, miss rate %.1f%%\n",
		agxProf.MeanSec*1e3, agxProf.WCETSec(margin)*1e3, 100*agxProf.MissRate(deadlineMS/1e3))
	if agxProf.MeanSec > nxProf.MeanSec {
		fmt.Println("  -> the more expensive platform is SLOWER for this engine (the paper's")
		fmt.Println("     Finding 4): pilot-test upgrades with real engines before committing budget.")
	} else {
		fmt.Println("  -> upgrade helps for this engine; the paper cautions this is not guaranteed.")
	}

	// End-to-end pipeline budget: camera -> preprocess -> inference -> brake.
	fmt.Println("\nsingle-frame pipeline budget (engine 1 on NX, p99 inference):")
	pb := wcet.AnalyzePipeline(nx, deadlineMS/1e3,
		wcet.Stage{Name: "capture", DurSec: 2.0e-3},
		wcet.Stage{Name: "preprocess", DurSec: 1.5e-3},
		wcet.Stage{Name: "inference", DurSec: nxProf.P99Sec},
		wcet.Stage{Name: "brake cmd", DurSec: 0.8e-3},
	)
	for _, s := range pb.Stages {
		fmt.Printf("  %-10s %6.2f ms\n", s.Name, s.DurSec*1e3)
	}
	fmt.Printf("  makespan %.2f ms against a %.0f ms budget -> fits: %v\n",
		pb.MakespanSec*1e3, deadlineMS, pb.Fits)
}
