// Quickstart: build a TensorRT-like engine for a zoo model, inspect what
// the optimizer did, time it on both simulated Jetson platforms, and run
// a numeric classification through the engine's actual kernel math.
package main

import (
	"fmt"
	"log"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
)

func main() {
	// 1. Load a model from the zoo (GoogLeNet: 57 convs, aux heads, LRN).
	g := models.MustBuild("googlenet")
	fmt.Printf("model %s: %d layers, %.1f MFLOPs, %.2f MB un-optimized\n",
		g.Name, len(g.Layers), float64(g.TotalFLOPs())/1e6, float64(g.ModelSizeBytes())/1e6)

	// 2. Build an engine on the Xavier NX: dead-layer removal, fusion,
	// horizontal merging, FP16 quantization, kernel auto-tuning.
	e, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d layers removed (aux heads, dropout), %d fused, %d merged\n",
		e.RemovedLayers, e.FusedLayers, e.MergedLaunches)
	fmt.Printf("plan: %d kernel launches, %.2f MB serialized (%.0f%% of the model)\n",
		len(e.Launches), float64(e.SizeBytes())/1e6,
		100*float64(e.SizeBytes())/float64(g.ModelSizeBytes()))

	// 3. Time it on both platforms at the paper's pinned clocks.
	for _, spec := range gpusim.Platforms() {
		dev := gpusim.NewDevice(spec, gpusim.PaperLatencyClock(spec))
		var secs []float64
		for i := 0; i < 10; i++ {
			r := e.Run(core.RunConfig{Device: dev, IncludeMemcpy: true, RunIndex: i})
			secs = append(secs, r.LatencySec)
		}
		s := metrics.Latencies(secs)
		fmt.Printf("latency on %s: %s ms over %d runs\n", spec.Short(), s, s.N)
	}

	// 4. Numeric inference: the reduced-scale proxy computes real math
	// with the engine's selected kernel variants.
	proxy, err := models.BuildProxy("googlenet", models.DefaultProxyOptions())
	if err != nil {
		log.Fatal(err)
	}
	pe, err := core.Build(proxy, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		log.Fatal(err)
	}
	set := dataset.Benign(dataset.DefaultBenign(1))[:20]
	correct := 0
	for _, sample := range set {
		outs, err := pe.Infer(sample.Image)
		if err != nil {
			log.Fatal(err)
		}
		if outs[0].Argmax() == sample.Label {
			correct++
		}
	}
	fmt.Printf("numeric inference: %d/%d benign images classified correctly\n", correct, len(set))
	fmt.Println("(the paper's classifiers run at 33-45% top-1 error on this regime — see Table III)")
}
