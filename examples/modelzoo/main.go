// Modelzoo: walk the paper's 13-network zoo, export every model in its
// native training-framework format, re-import it, and build engines on
// both platforms — the full import pipeline of the paper's Figure 2
// (Caffe/TensorFlow/PyTorch/Darknet in, optimized engine out).
package main

import (
	"fmt"
	"log"

	"edgeinfer/internal/core"
	"edgeinfer/internal/frameworks"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/models"
)

func main() {
	fmt.Printf("%-24s %-11s %-22s %10s %10s %10s %7s\n",
		"model", "framework", "layers", "model MB", "eng NX MB", "eng AGX MB", "removed")
	for _, name := range models.List() {
		g := models.MustBuild(name)

		// Round-trip through the native framework serialization, as a
		// deployment pipeline would (train -> export -> import -> build).
		native := frameworks.Native(g)
		m, err := frameworks.Export(g, native)
		if err != nil {
			log.Fatalf("%s: export: %v", name, err)
		}
		imported, err := frameworks.Import(m)
		if err != nil {
			log.Fatalf("%s: import: %v", name, err)
		}

		eNX, err := core.Build(imported, core.DefaultConfig(gpusim.XavierNX(), 1))
		if err != nil {
			log.Fatalf("%s: build NX: %v", name, err)
		}
		eAGX, err := core.Build(imported, core.DefaultConfig(gpusim.XavierAGX(), 1))
		if err != nil {
			log.Fatalf("%s: build AGX: %v", name, err)
		}
		fmt.Printf("%-24s %-11s %-22s %10.2f %10.2f %10.2f %7d\n",
			name, native,
			fmt.Sprintf("%d (%d kernels)", len(imported.Layers), len(eNX.Launches)),
			float64(imported.ModelSizeBytes())/1e6,
			float64(eNX.SizeBytes())/1e6,
			float64(eAGX.SizeBytes())/1e6,
			eNX.RemovedLayers)
	}
	fmt.Println("\nengine ~= half the model (FP16), except: GoogLeNet (dead aux heads removed)")
	fmt.Println("and MTCNN (three cascade stages of cubin+header overhead exceed its 1.9 MB of weights).")
}
