// Intersection: the paper's traffic-intersection control application
// (§VI-A). One embedded platform serves many camera feeds with a single
// shared detection engine over CUDA-like streams; detected violations
// trigger number-plate classification and automated fines. The example
// demonstrates both the positive findings (concurrency headroom) and the
// legal hazard of non-deterministic engines: after a routine engine
// rebuild, some plates read differently and different vehicles get fined.
package main

import (
	"fmt"
	"log"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

const cameras = 8

func main() {
	spec := gpusim.XavierAGX()
	dev := gpusim.NewDevice(spec, gpusim.PaperMaxClock(spec))

	// Detection: one Tiny-YOLOv3 engine shared by all camera streams.
	det, err := core.Build(models.MustBuild("tiny-yolov3"), core.DefaultConfig(spec, 1))
	if err != nil {
		log.Fatal(err)
	}
	load := det.StreamLoad(dev)
	sat := gpusim.SaturationThreads(dev, load)
	fmt.Printf("intersection controller on %s: %d cameras, shared %s engine\n",
		spec.Short(), cameras, det.ModelName)
	fmt.Printf("platform sustains %d concurrent feeds (%.1f FPS per feed at %d cameras, GPU %.0f%%)\n",
		sat, gpusim.ThreadFPS(dev, load, cameras), cameras,
		100*gpusim.GPUUtilization(dev, load, cameras))

	// The plate-reading classifier co-locates with detection on the same
	// GPU: check both still meet rate with the shared budget.
	clsEngine, err := core.Build(models.MustBuild("resnet18"), core.DefaultConfig(spec, 1))
	if err != nil {
		log.Fatal(err)
	}
	shares := gpusim.Colocate(dev, []gpusim.StreamLoad{load, clsEngine.StreamLoad(dev)}, []int{cameras, 2})
	fmt.Printf("co-located with plate reader: detection %.1f FPS/feed, classifier %.1f FPS/thread (%.0f%% contention loss)\n\n",
		shares[0].FPSPerThread, shares[1].FPSPerThread, 100*shares[0].Degradation)

	// Per-camera frame loop on a shared context: detect vehicles on
	// synthetic scenes and check the red-light stop line.
	ctx := gpusim.NewContext(dev)
	frameDur := load.PerFrameGPUSec + load.PerFrameHostSec
	sceneCfg := dataset.DefaultScenes()
	violations := 0
	var plates []string
	for cam := 0; cam < cameras; cam++ {
		stream := ctx.NewStream()
		for frame := 0; frame < 4; frame++ {
			done := stream.Enqueue(float64(frame)*frameDur, frameDur)
			scene := dataset.Generate(sceneCfg, cam*100+frame)
			boxes := detect(scene)
			for _, b := range boxes {
				// Stop line at 3/4 frame height; a vehicle past it during
				// red is a violation.
				if b.Y+b.H > sceneCfg.HW*3/4 {
					violations++
					plates = append(plates, scene.Plate)
					fmt.Printf("cam %d frame %d (t=%.1fms): %s past stop line, plate %s flagged\n",
						cam, frame, done*1e3, b.Class, scene.Plate)
					break
				}
			}
		}
	}
	fmt.Printf("\n%d violations flagged across %d cameras (%d plates queued for fining)\n\n",
		violations, cameras, len(plates))

	// Plate classification: the number-reading CNN (classifier proxy).
	// Build the SAME model twice — a routine redeploy — and compare reads.
	proxy, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		log.Fatal(err)
	}
	unitA, err := core.Build(proxy, core.DefaultConfig(spec, 1))
	if err != nil {
		log.Fatal(err)
	}
	unitB, err := core.Build(proxy, core.DefaultConfig(gpusim.XavierNX(), 1)) // the fleet's NX-based unit
	if err != nil {
		log.Fatal(err)
	}
	images := plateImages(1000) // boundary-rich evidence set
	disagreements := 0
	for i, img := range images {
		a, err := unitA.Infer(img)
		if err != nil {
			log.Fatal(err)
		}
		b, err := unitB.Infer(img)
		if err != nil {
			log.Fatal(err)
		}
		ca, cb := a[0].Argmax(), b[0].Argmax()
		if ca != cb {
			disagreements++
			fmt.Printf("HAZARD: evidence image %d reads as plate class %d on unit A but %d on unit B\n", i, ca, cb)
		}
	}
	fmt.Printf("\nplate reads compared on %d evidence images: %d disagreements between\n", len(images), disagreements)
	fmt.Println("two engines built from the SAME trained model (AGX unit vs NX unit).")
	if disagreements > 0 {
		fmt.Println("=> different vehicles would be fined depending on which unit processed the frame")
		fmt.Println("   (the paper's Table XVI legal-exposure scenario). Deploy ONE serialized plan everywhere.")
	} else {
		fmt.Println("=> no flips in this batch — but the paper's Tables V-VI show 0.1-0.8% of reads")
		fmt.Println("   flip between engine builds; at city scale that is daily wrongful fines.")
	}
}

// detect is the synthetic stand-in for running the detection engine's
// output decoder on a scene: ground truth boxes with localization noise,
// scored against truth at IoU 0.75 like the paper's detection metric.
func detect(s dataset.Scene) []dataset.Box {
	var out []dataset.Box
	for i, t := range s.Truth {
		b := t
		b.X += (i % 3) - 1 // ±1px localization error
		b.Confidence = 0.9
		pred := metrics.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H}
		truth := metrics.Rect{X: t.X, Y: t.Y, W: t.W, H: t.H}
		if metrics.IoU(pred, truth) >= 0.75 {
			out = append(out, b)
		}
	}
	return out
}

// plateImages synthesizes noisy plate-crop images (class templates near
// decision boundaries, as low-light camera crops are).
func plateImages(n int) []*tensor.Tensor {
	cfg := dataset.DefaultBenign((n + dataset.NumClasses - 1) / dataset.NumClasses)
	cfg.NoiseSigma = 5.5 // night-time crops: noisier than the benign set
	set := dataset.Benign(cfg)
	var out []*tensor.Tensor
	for i := 0; i < n && i < len(set); i++ {
		out = append(out, set[i].Image)
	}
	return out
}
