package edgeinfer

// One benchmark per table and figure of the paper's evaluation: each
// regenerates its experiment end-to-end on the simulator, so
// `go test -bench=. -benchmem` reproduces the paper's entire results
// section. Reported custom metrics carry the experiment's headline
// numbers (error %, FPS gain, anomaly counts) into the benchmark output.
//
// Ablation benchmarks at the bottom toggle the design mechanisms that
// DESIGN.md §4 calls out (tuner noise, pruning, L2 contention) and report
// how the paper's phenomena respond.

import (
	"reflect"
	"testing"

	"edgeinfer/internal/core"
	"edgeinfer/internal/dataset"
	"edgeinfer/internal/experiments"
	"edgeinfer/internal/gpusim"
	"edgeinfer/internal/metrics"
	"edgeinfer/internal/models"
	"edgeinfer/internal/tensor"
)

// benchOpts keeps numeric experiments tractable under -bench.
func benchOpts() experiments.Options {
	return experiments.Options{
		BenignPerClass: 5,
		AdvPerClass:    1,
		AdvTypes: []dataset.Corruption{dataset.GaussianNoise, dataset.Fog,
			dataset.MotionBlur, dataset.Contrast},
		Runs:           10,
		EnginesPerSide: 3,
	}
}

func BenchmarkTable1_DeviceQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchOpts())
		if len(lab.RenderTable1()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable2_ModelZooEngineSizes(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table2()
	}
	b.ReportMetric(rows[4].EngineNXMB, "googlenet-engine-MB")
	b.ReportMetric(rows[11].EngineNXMB, "mtcnn-engine-MB")
}

func BenchmarkTable3_BenignAccuracy(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table3()
	}
	b.ReportMetric(rows[0].NXError, "alexnet-trt-err%")
	b.ReportMetric(rows[0].UnoptError-rows[0].NXError, "alexnet-trt-gain%")
}

func BenchmarkTable4_AdversarialAccuracy(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table4()
	}
	b.ReportMetric(rows[0].NXError, "sev1-err%")
	b.ReportMetric(rows[1].NXError, "sev5-err%")
}

func BenchmarkTable5_CrossPlatformConsistency(b *testing.B) {
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table5()
	}
	total := 0
	for _, r := range rows {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				total += r.Mismatches[i][j]
			}
		}
	}
	b.ReportMetric(float64(total), "mismatches")
}

func BenchmarkTable6_SamePlatformConsistency(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table6()
	}
	total := 0
	for _, r := range rows {
		total += r.M12 + r.M23 + r.M13
	}
	b.ReportMetric(float64(total), "mismatches")
}

func BenchmarkTable7_ThroughputGain(b *testing.B) {
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table7()
	}
	mean := 0.0
	for _, r := range rows {
		mean += r.NXGain / float64(len(rows))
	}
	b.ReportMetric(mean, "mean-trt-gain-x")
}

func BenchmarkFigure3_TinyYOLOConcurrency(b *testing.B) {
	var series []experiments.FigureSeries
	for i := 0; i < b.N; i++ {
		series = experiments.NewLab(benchOpts()).Figure3()
	}
	b.ReportMetric(float64(series[0].Saturation), "NX-threads")
	b.ReportMetric(float64(series[1].Saturation), "AGX-threads")
}

func BenchmarkFigure4_GoogLeNetConcurrency(b *testing.B) {
	var series []experiments.FigureSeries
	for i := 0; i < b.N; i++ {
		series = experiments.NewLab(benchOpts()).Figure4()
	}
	b.ReportMetric(float64(series[0].Saturation), "NX-threads")
	b.ReportMetric(float64(series[1].Saturation), "AGX-threads")
}

func BenchmarkTable8_LatencyMatrix(b *testing.B) {
	var rows []experiments.Table8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table8()
	}
	anomalous := 0
	for _, r := range rows {
		if len(r.Matrix.Anomalies()) > 0 {
			anomalous++
		}
	}
	b.ReportMetric(float64(anomalous), "anomalous-models")
}

func BenchmarkTable9_NoProfiler(b *testing.B) {
	var rows []experiments.Table8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table9()
	}
	b.ReportMetric(rows[0].Matrix.CNXRNX.MeanMS, "inceptionv4-ms")
}

func BenchmarkTable10_MemcpyDissection(b *testing.B) {
	var rows []experiments.Table10Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table10()
	}
	memcpySlower := 0
	for _, r := range rows {
		if r.MemcpyAnomalous {
			memcpySlower++
		}
	}
	b.ReportMetric(float64(memcpySlower), "memcpy-slower-on-AGX")
}

func BenchmarkTable11_KernelComparison(b *testing.B) {
	var rows []experiments.Table11Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table11()
	}
	slower := 0
	for _, r := range rows {
		if r.SlowerOnAGX {
			slower++
		}
	}
	b.ReportMetric(float64(slower), "kernels-slower-on-AGX")
}

func BenchmarkTable12_EngineVariance(b *testing.B) {
	var rows []experiments.Table12Row
	for i := 0; i < b.N; i++ {
		rows = experiments.NewLab(benchOpts()).Table12()
	}
	varies := 0
	for _, r := range rows {
		if r.Varies {
			varies++
		}
	}
	b.ReportMetric(float64(varies), "models-varying")
}

func BenchmarkTable13_KernelCounts(b *testing.B) {
	var r experiments.Table13Result
	for i := 0; i < b.N; i++ {
		r = experiments.NewLab(benchOpts()).Table13()
	}
	b.ReportMetric(float64(r.Calls[0]), "engine1-calls")
	b.ReportMetric(float64(r.Calls[2]), "engine3-calls")
}

func BenchmarkTable17_BSPInceptionV4(b *testing.B) {
	var r experiments.Table17Result
	for i := 0; i < b.N; i++ {
		r = experiments.NewLab(benchOpts()).Table17()
	}
	b.ReportMetric(r.ErrorSpreadPct, "error-spread-pct")
}

func BenchmarkTable18_BSPMobileNet(b *testing.B) {
	var r experiments.Table17Result
	for i := 0; i < b.N; i++ {
		r = experiments.NewLab(benchOpts()).Table18()
	}
	b.ReportMetric(r.ErrorSpreadPct, "error-spread-pct")
}

// --- ablations (DESIGN.md §4) ----------------------------------------------

// BenchmarkAblationTunerNoise shows that the paper's non-determinism is
// entirely the tuner's measurement noise: with noise off, repeated builds
// are identical; with the default noise, they differ.
func BenchmarkAblationTunerNoise(b *testing.B) {
	g := models.MustBuild("inceptionv4")
	differWithNoise, differWithout := 0, 0
	for i := 0; i < b.N; i++ {
		noisy1, _ := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 1))
		noisy2, _ := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), 2))
		if !reflect.DeepEqual(noisy1.KernelCounts(), noisy2.KernelCounts()) {
			differWithNoise++
		}
		cfg1, cfg2 := core.DefaultConfig(gpusim.XavierNX(), 1), core.DefaultConfig(gpusim.XavierNX(), 2)
		cfg1.TunerNoise, cfg2.TunerNoise = 0, 0
		det1, _ := core.Build(g, cfg1)
		det2, _ := core.Build(g, cfg2)
		if !reflect.DeepEqual(det1.KernelCounts(), det2.KernelCounts()) {
			differWithout++
		}
	}
	b.ReportMetric(float64(differWithNoise)/float64(b.N), "builds-differ-noisy")
	b.ReportMetric(float64(differWithout)/float64(b.N), "builds-differ-noise0")
}

// BenchmarkAblationPruning isolates the accuracy mechanism of Finding 1:
// with pruning disabled, the un-optimized model's overfit perturbation
// survives quantization and the TensorRT accuracy gain disappears.
func BenchmarkAblationPruning(b *testing.B) {
	proxy, err := models.BuildProxy("resnet18", models.DefaultProxyOptions())
	if err != nil {
		b.Fatal(err)
	}
	set := dataset.Benign(dataset.BenignConfig{Seed: "imagenet-proxy", Classes: 100, PerClass: 3, NoiseSigma: 3.8})
	errOf := func(prune float64) float64 {
		cfg := core.DefaultConfig(gpusim.XavierNX(), 1)
		cfg.PruneFrac = prune
		e, err := core.Build(proxy, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var pred, labels []int
		for _, s := range set {
			o, err := e.Infer(s.Image)
			if err != nil {
				b.Fatal(err)
			}
			pred = append(pred, o[0].Argmax())
			labels = append(labels, s.Label)
		}
		return metrics.Top1Error(pred, labels)
	}
	var withPrune, withoutPrune float64
	for i := 0; i < b.N; i++ {
		withPrune = errOf(0.6)
		withoutPrune = errOf(0)
	}
	b.ReportMetric(withPrune, "err%-pruned")
	b.ReportMetric(withoutPrune, "err%-unpruned")
}

// BenchmarkAblationL2Contention quantifies the shared-L2 mechanism behind
// Finding 5 by comparing a 73KB-working-set kernel's latency ratio
// between the platforms against a small-working-set one.
func BenchmarkAblationL2Contention(b *testing.B) {
	nx := gpusim.NewDevice(gpusim.XavierNX(), 599)
	agx := gpusim.NewDevice(gpusim.XavierAGX(), 624)
	var bigRatio, smallRatio float64
	for i := 0; i < b.N; i++ {
		big := nx.L2ContentionFactor(86016) / agx.L2ContentionFactor(86016)
		small := nx.L2ContentionFactor(32*1024) / agx.L2ContentionFactor(32*1024)
		bigRatio, smallRatio = 1/big, 1/small
	}
	b.ReportMetric(bigRatio, "AGX-penalty-73KB-ws")
	b.ReportMetric(smallRatio, "AGX-penalty-32KB-ws")
}

// BenchmarkEngineBuild times the optimizer+tuner pipeline itself on the
// heaviest model.
func BenchmarkEngineBuild(b *testing.B) {
	g := models.MustBuild("inceptionv4")
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.DefaultConfig(gpusim.XavierNX(), i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNumericInference times one proxy inference through tuned
// kernel variants (the unit of work behind Tables III-VI).
func BenchmarkNumericInference(b *testing.B) {
	proxy, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.Build(proxy, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		b.Fatal(err)
	}
	img := dataset.Benign(dataset.DefaultBenign(1))[0].Image
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferBatch times the layer-major batched inference path on
// the same engine as BenchmarkNumericInference; divide ns/op by the
// batch size to compare per-image cost against the per-image path.
func BenchmarkInferBatch(b *testing.B) {
	proxy, err := models.BuildProxy("vgg16", models.DefaultProxyOptions())
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.Build(proxy, core.DefaultConfig(gpusim.XavierNX(), 1))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	set := dataset.Benign(dataset.DefaultBenign(1))
	xs := make([]*tensor.Tensor, batch)
	for i := range xs {
		xs[i] = set[i%len(set)].Image
	}
	b.ReportMetric(batch, "images/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.InferBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionPrecisionStudy runs the FP32/FP16/INT8 extension
// experiment (percentile-calibrated INT8 engines).
func BenchmarkExtensionPrecisionStudy(b *testing.B) {
	var rows []experiments.PrecisionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NewLab(benchOpts()).PrecisionStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Model == "resnet18" && r.Precision.String() == "int8" {
			b.ReportMetric(r.FPSGainVs32, "resnet18-int8-speedup-x")
			b.ReportMetric(r.ErrorPct, "resnet18-int8-err%")
		}
	}
}
