#!/bin/sh
# CI gate: the tier-1 checks (build + test) plus vet, the race detector
# (the serve/faults packages are exercised concurrently), short fuzz
# smokes over the two untrusted deserializers (engine plans and timing
# caches), the shared-timing-cache fleet-convergence audit (warm rebuilds
# must be byte-identical), the chaos smoke (a short replica-fleet soak
# that must show zero wrong-answer escapes and zero leaked quarantines),
# the rtlint static-analysis suite — all eight source analyzers over
# the module, diffed against the checked-in rtlint_baseline.json ledger
# (any finding not in the ledger fails the gate; the ledger is currently
# empty, so the tree must stay clean), then static plan-IR verification
# of every classifier engine the results are generated from — a
# benchmark smoke over the hot
# numeric paths, archived as BENCH_numeric.json so ns/op and allocs/op
# regressions are diffable across commits, and the serving soak (an
# open-loop 2x-overload run against the netserve front-end that must
# shed explicitly, answer every request, and drain cleanly — run under
# both the FIFO baseline and the EDF + WCET-admission discipline, the
# latter gated on deadline-miss rate), archived as BENCH_serve.json.
# Finally the cluster chaos soak: a partitioned NX/AGX pipeline under a
# seeded mid-stream stage kill plus link noise, run under the race
# detector, gated on zero lost frames, bit-identical answered outputs
# against the fault-free baseline, and bounded recovery; its partition
# choice and recovery metrics archive as BENCH_cluster.json. Last, the
# learned-predictor cold-build benchmark (cmd/predbench): the model zoo
# built unpruned vs pruned with a freshly trained latency predictor,
# gated on byte-identical tactic choices and a >=50% cut in modeled
# tactic-timing cost, archived as BENCH_build.json.
# Run from the repo root.
set -eux

go vet ./...
go build ./...
go test -race -timeout 20m ./...
go test -run='^$' -fuzz='^FuzzLoad$' -fuzztime=10s ./internal/core
go test -run='^$' -fuzz='^FuzzLoadTimingCache$' -fuzztime=5s ./internal/core
go run ./cmd/fleetcheck -model resnet18 -sharedCache
go run ./cmd/chaosbench -smoke -requests 30 -out ''
go run ./cmd/rtlint -json -baseline rtlint_baseline.json ./...
go run ./cmd/rtlint -plancheck
go test -run='^$' -bench='^(BenchmarkNumericInference|BenchmarkEngineBuild|BenchmarkInferBatch)$' \
  -benchmem -benchtime=1x . | go run ./cmd/benchjson -out BENCH_numeric.json
# Serving soak, twice over the same 2x-overload tight-deadline mix: the
# FIFO baseline, then the EDF + WCET-admission discipline whose smoke
# additionally gates the deadline-miss rate (admission sheds hopeless
# budgets at the door instead of letting them expire in the queue).
# Both result lines land in BENCH_serve.json so the miss-rate reduction
# is diffable across commits.
{
  go run ./cmd/loadgen -smoke -name BenchmarkServeLoadFIFO \
    -deadline 250 -tightFrac 0.25 -spread 3
  go run ./cmd/loadgen -smoke -name BenchmarkServeLoadEDF \
    -deadline 250 -tightFrac 0.25 -spread 3 -edf -wcet -missGate 0.05
} | go run ./cmd/benchjson -out BENCH_serve.json
# Cluster chaos soak: mid-stream stage death must recover with zero
# lost frames and bit-identical answers (see cmd/clusterbench).
go run -race ./cmd/clusterbench -smoke | go run ./cmd/benchjson -out BENCH_cluster.json
# Learned-predictor cold-build benchmark: the zoo built unpruned and
# pruned with a freshly trained latency predictor. The run itself gates
# byte-identical tactic choices and a >=50% tactic-timing cost cut; both
# result lines archive as BENCH_build.json so the speedup is diffable.
go run ./cmd/predbench | go run ./cmd/benchjson -out BENCH_build.json
