#!/bin/sh
# CI gate: the tier-1 checks (build + test) plus vet, the race detector
# (the serve/faults packages are exercised concurrently), and a short
# fuzz smoke over the untrusted plan loader. Run from the repo root.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzLoad -fuzztime=10s ./internal/core
