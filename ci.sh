#!/bin/sh
# CI gate: the tier-1 checks (build + test) plus vet, the race detector
# (the serve/faults packages are exercised concurrently), a short fuzz
# smoke over the untrusted plan loader, and the rtlint static-analysis
# suite — source analyzers over the module, then static plan-IR
# verification of every classifier engine the results are generated
# from. Run from the repo root.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzLoad -fuzztime=10s ./internal/core
go run ./cmd/rtlint ./...
go run ./cmd/rtlint -plancheck
