// Package edgeinfer is a pure-Go reproduction of "Demystifying TensorRT:
// Characterizing Neural Network Inference Engine on Nvidia Edge Devices"
// (IISWC 2021): a TensorRT-like inference-engine builder and runtime, an
// analytic simulator of the Jetson Xavier NX and AGX GPUs, the paper's
// 13-network model zoo, synthetic benign/adversarial datasets, profiling
// tools, and a harness that regenerates every table and figure of the
// paper's evaluation. See README.md for a tour and DESIGN.md for the
// architecture and the simulation-substitution rationale.
package edgeinfer
